//! CI regression gates: accuracy golden-diff and perf baseline-diff.
//!
//! Two committed files under `ci/` pin what the build must reproduce:
//!
//! * `ci/golden_accuracy.json` — the per-benchmark interval-vs-detailed
//!   error of Figures 4 and 5 and the per-policy hybrid CPI error, all at
//!   quick scale. Every simulated quantity behind these numbers is
//!   deterministic in `(model, config, workload, seed)`, so a diff beyond
//!   the recorded tolerance means a *modeling* change, not noise — the gate
//!   fails the build and forces the author to regenerate the golden file
//!   deliberately (`accuracy_gate --write`).
//! * `ci/BENCH_baseline.json` — a committed `perf` run. The perf gate fails
//!   when any model's simulated MIPS regresses by more than the allowed
//!   fraction against it. Host speed varies between machines, which is why
//!   this gate tolerates a generous margin (default 25%) rather than an
//!   exact match.
//!
//! The vendored `serde` is a no-op marker with no serializer backend, so
//! both files are written and parsed by the hand-rolled line-oriented
//! JSON subset in this module: one object per line inside the `rows` /
//! `models` arrays, string fields as `"key": "value"`, numbers as
//! `"key": 1.25`. The parsers are pure functions over text so the gate
//! logic — including "injected drift must fail" — is unit-tested directly.

use std::fmt::Write as _;

use iss_sim::experiments::{
    self, default_hybrid_policies, default_sampling_specs, ExperimentScale, Fig4Variant,
};
use iss_sim::report;
use iss_sim::Record;

/// One pinned accuracy number.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenRow {
    /// Which experiment the number comes from (`fig4-<variant>`, `fig5`, or
    /// `hybrid-<policy label>`).
    pub figure: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Relative error against detailed simulation (interval IPC error for
    /// the figures, hybrid CPI error for the hybrid rows).
    pub error: f64,
}

/// A parsed golden-accuracy file.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenAccuracy {
    /// Experiment scale the numbers were produced at.
    pub scale: ExperimentScale,
    /// Absolute error drift allowed per row.
    pub tolerance: f64,
    /// The pinned rows.
    pub rows: Vec<GoldenRow>,
}

/// Extracts `"key": "value"` from a JSON-subset line.
fn field_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let rest = &line[line.find(&marker)? + marker.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// Extracts `"key": <number>` from a JSON-subset line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let rest = line[line.find(&marker)? + marker.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Renders a golden-accuracy file.
#[must_use]
pub fn render_golden_accuracy(
    scale: ExperimentScale,
    tolerance: f64,
    rows: &[GoldenRow],
) -> String {
    let mut j = String::new();
    j.push_str("{\n  \"schema\": \"iss-accuracy-golden/v1\",\n");
    let _ = writeln!(
        j,
        "  \"scale\": {{\"spec_length\": {}, \"parsec_length\": {}, \"seed\": {}}},",
        scale.spec_length, scale.parsec_length, scale.seed
    );
    let _ = writeln!(j, "  \"tolerance\": {tolerance:.4},");
    j.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"figure\": \"{}\", \"benchmark\": \"{}\", \"error\": {:.6}}}{}",
            r.figure,
            r.benchmark,
            r.error,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    j.push_str("  ]\n}\n");
    j
}

/// Parses a golden-accuracy file.
///
/// # Errors
///
/// Returns a message when the schema marker or any required field is
/// missing or malformed.
pub fn parse_golden_accuracy(text: &str) -> Result<GoldenAccuracy, String> {
    if !text.contains("iss-accuracy-golden/v1") {
        return Err("not an iss-accuracy-golden/v1 file".to_string());
    }
    let mut scale = None;
    let mut tolerance = None;
    let mut rows = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.contains("\"spec_length\"") {
            scale = Some(ExperimentScale {
                spec_length: field_num(trimmed, "spec_length")
                    .ok_or("malformed scale: spec_length")? as u64,
                parsec_length: field_num(trimmed, "parsec_length")
                    .ok_or("malformed scale: parsec_length")? as u64,
                seed: field_num(trimmed, "seed").ok_or("malformed scale: seed")? as u64,
            });
        } else if trimmed.starts_with("\"tolerance\"") {
            tolerance = field_num(trimmed, "tolerance");
        } else if trimmed.contains("\"figure\"") {
            rows.push(GoldenRow {
                figure: field_str(trimmed, "figure").ok_or("malformed row: figure")?,
                benchmark: field_str(trimmed, "benchmark").ok_or("malformed row: benchmark")?,
                error: field_num(trimmed, "error").ok_or("malformed row: error")?,
            });
        }
    }
    if rows.is_empty() {
        return Err(
            "golden file contains no rows — truncated or malformed; regenerate with `accuracy_gate --write`"
                .to_string(),
        );
    }
    Ok(GoldenAccuracy {
        scale: scale.ok_or("missing scale")?,
        tolerance: tolerance.ok_or("missing tolerance")?,
        rows,
    })
}

/// Diffs freshly computed rows against a golden file. Returns one violation
/// message per drifted, missing or unpinned row; an empty list means the
/// gate passes.
#[must_use]
pub fn diff_accuracy(golden: &GoldenAccuracy, current: &[GoldenRow]) -> Vec<String> {
    let mut violations = Vec::new();
    // A gate that compares nothing proves nothing: an empty baseline (a
    // truncated or hand-edited golden file) or an empty fresh run must be
    // loud failures, never a green build.
    if golden.rows.is_empty() {
        violations.push(
            "golden baseline is empty — the gate would pass vacuously; regenerate with `accuracy_gate --write`"
                .to_string(),
        );
    }
    if current.is_empty() {
        violations.push(
            "this build produced no accuracy rows — the gate would pass vacuously".to_string(),
        );
    }
    for g in &golden.rows {
        match current
            .iter()
            .find(|c| c.figure == g.figure && c.benchmark == g.benchmark)
        {
            None => violations.push(format!(
                "{} / {}: pinned in the golden file but not produced by this build",
                g.figure, g.benchmark
            )),
            Some(c) => {
                let drift = (c.error - g.error).abs();
                if drift > golden.tolerance {
                    violations.push(format!(
                        "{} / {}: error {:.4} drifted {:.4} from golden {:.4} \
                         (tolerance {:.4})",
                        g.figure, g.benchmark, c.error, drift, g.error, golden.tolerance
                    ));
                }
            }
        }
    }
    for c in current {
        if !golden
            .rows
            .iter()
            .any(|g| g.figure == c.figure && g.benchmark == c.benchmark)
        {
            violations.push(format!(
                "{} / {}: produced by this build but not pinned — regenerate the \
                 golden file (accuracy_gate --write)",
                c.figure, c.benchmark
            ));
        }
    }
    violations
}

/// Computes the current accuracy rows: all four Figure 4 variants, Figure 5,
/// and the hybrid/sampling frontiers under their default sweeps — all
/// through the generic scenario engine, paired out of the unified
/// [`Record`] rows.
///
/// The error formulas are the figures' own: per-core IPC error for the
/// single-threaded accuracy figures, whole-run CPI error (against the
/// group's pure-detailed reference) for the frontier rows — identical
/// operations to the legacy bespoke drivers, so the committed golden file
/// keeps passing without regeneration.
///
/// # Panics
///
/// Panics when a comparison group comes back without its reference record
/// (impossible for the sweeps this function constructs).
#[must_use]
pub fn compute_accuracy_rows(benchmarks: &[&str], scale: ExperimentScale) -> Vec<GoldenRow> {
    let mut rows = Vec::new();
    for variant in Fig4Variant::all() {
        rows.extend(ipc_error_rows(&experiments::fig4(
            variant, benchmarks, scale,
        )));
    }
    rows.extend(ipc_error_rows(&experiments::fig5(benchmarks, scale)));
    let policies = default_hybrid_policies(scale);
    rows.extend(cpi_error_rows(
        &experiments::fig_hybrid(benchmarks, &policies, scale),
        "hybrid-",
        "",
    ));
    let specs = default_sampling_specs(scale);
    rows.extend(cpi_error_rows(
        &experiments::fig_sampling(benchmarks, &specs, scale),
        "sampled-",
        "sampling-",
    ));
    rows
}

/// One golden row per group: the interval variant's core-0 IPC error
/// against the detailed variant (Figures 4 and 5), keyed by the sweep
/// name.
fn ipc_error_rows(records: &[Record]) -> Vec<GoldenRow> {
    report::groups(records)
        .into_iter()
        .map(|group| {
            let detailed = group.variant("detailed").expect("detailed reference");
            let interval = group.variant("interval").expect("interval candidate");
            GoldenRow {
                figure: interval.sweep.clone(),
                benchmark: group.key.to_string(),
                error: interval.ipc_error_vs(detailed),
            }
        })
        .collect()
}

/// One golden row per `(group, matching variant)`: the variant's CPI error
/// against the group's detailed reference, keyed by the variant label with
/// an optional figure prefix (the hybrid and sampling frontiers).
fn cpi_error_rows(records: &[Record], variant_prefix: &str, figure_prefix: &str) -> Vec<GoldenRow> {
    let mut rows = Vec::new();
    for group in report::groups(records) {
        let detailed = group.variant("detailed").expect("detailed reference");
        for r in &group.records {
            if r.variant.starts_with(variant_prefix) {
                rows.push(GoldenRow {
                    figure: format!("{figure_prefix}{}", r.variant),
                    benchmark: group.key.to_string(),
                    error: r.cpi_error_vs(detailed),
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Perf baseline gate
// ---------------------------------------------------------------------------

/// Simulated-MIPS entry of one model in a perf file.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelMips {
    /// Model name (`interval`, `detailed`, `one-ipc`).
    pub model: String,
    /// Simulated MIPS the perf run measured.
    pub simulated_mips: f64,
}

/// Parses the `reference_kernel_mops` entry of a perf file: the throughput
/// of the fixed host-speed calibration kernel, or `None` for files written
/// before the kernel existed.
#[must_use]
pub fn parse_reference_kernel(text: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.contains("\"reference_kernel_mops\""))
        .and_then(|l| field_num(l, "reference_kernel_mops"))
        .filter(|&m| m > 0.0)
}

/// Parses the `models` entries of a `BENCH_interval.json` perf file.
///
/// # Errors
///
/// Returns a message when the schema marker is missing or no model entry
/// parses.
pub fn parse_perf_models(text: &str) -> Result<Vec<ModelMips>, String> {
    if !text.contains("iss-bench-perf/v1") {
        return Err("not an iss-bench-perf/v1 file".to_string());
    }
    let models: Vec<ModelMips> = text
        .lines()
        .filter(|l| l.contains("\"model\"") && l.contains("\"simulated_mips\""))
        .filter_map(|l| {
            Some(ModelMips {
                model: field_str(l, "model")?,
                simulated_mips: field_num(l, "simulated_mips")?,
            })
        })
        .collect();
    if models.is_empty() {
        return Err("no model entries found in perf file".to_string());
    }
    Ok(models)
}

/// Diffs a fresh perf run against the committed baseline. A model regresses
/// when its simulated MIPS falls below `(1 - max_regression)` of the
/// baseline; missing models are violations too. Speedups never fail the
/// gate.
///
/// `baseline_ref` / `fresh_ref` are the two runs' reference-kernel
/// throughputs (MOPS of the same fixed integer kernel on each host). When
/// both are present, every MIPS number is divided by its run's kernel speed
/// before comparison, so a host that is uniformly slower (or noisier) than
/// the baseline machine cancels out and the margin gates *simulator*
/// regressions only. When either is missing (a pre-calibration baseline
/// file), the comparison falls back to raw MIPS.
#[must_use]
pub fn diff_perf(
    baseline: &[ModelMips],
    fresh: &[ModelMips],
    baseline_ref: Option<f64>,
    fresh_ref: Option<f64>,
    max_regression: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    // Same vacuous-pass hardening as the accuracy gate: comparing against
    // (or with) nothing is a failure, not a pass.
    if baseline.is_empty() {
        violations.push(
            "perf baseline is empty — the gate would pass vacuously; regenerate it with the `perf` binary"
                .to_string(),
        );
    }
    if fresh.is_empty() {
        violations.push(
            "fresh perf run has no model entries — the gate would pass vacuously".to_string(),
        );
    }
    let (base_div, fresh_div, normalized) = match (baseline_ref, fresh_ref) {
        (Some(b), Some(f)) if b > 0.0 && f > 0.0 => (b, f, true),
        _ => (1.0, 1.0, false),
    };
    for b in baseline {
        match fresh.iter().find(|f| f.model == b.model) {
            None => violations.push(format!(
                "{}: present in the baseline but missing from the fresh run",
                b.model
            )),
            Some(f) => {
                let base_norm = b.simulated_mips / base_div;
                let fresh_norm = f.simulated_mips / fresh_div;
                let floor = base_norm * (1.0 - max_regression);
                if fresh_norm < floor {
                    let unit = if normalized {
                        "normalized MIPS (MIPS per kernel MOPS)"
                    } else {
                        "simulated MIPS"
                    };
                    violations.push(format!(
                        "{}: {:.4} {unit} is below the allowed floor {:.4} \
                         (baseline {:.4}, max regression {:.0}%)",
                        b.model,
                        fresh_norm,
                        floor,
                        base_norm,
                        max_regression * 100.0
                    ));
                }
            }
        }
    }
    violations
}

/// Throughput entry of one isolated batch kernel in a perf file.
///
/// These are the lane kernels behind the warming and interval hot loops
/// (set-major tag compare, batched TLB translate, the geometric threshold
/// scan, batched branch update), measured in million operations per second
/// on realistic harvested columns. The perf gate pins each one the same
/// way it pins the model MIPS rows: as a host-normalized ratio against the
/// committed baseline, so a vectorized kernel cannot quietly rot back to
/// scalar speed without failing CI.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMops {
    /// Kernel name (`tag_compare`, `tlb_access_batch`, `threshold_scan`,
    /// `branch_update_batch`).
    pub kernel: String,
    /// Million kernel operations per host second.
    pub mops: f64,
}

/// Parses the `kernels` entries of a perf file. Files written before the
/// kernel rows existed have none; the empty list is the back-compat signal
/// [`diff_kernels`] keys on.
#[must_use]
pub fn parse_perf_kernels(text: &str) -> Vec<KernelMops> {
    text.lines()
        .filter(|l| l.contains("\"kernel\"") && l.contains("\"mops\""))
        .filter_map(|l| {
            Some(KernelMops {
                kernel: field_str(l, "kernel")?,
                mops: field_num(l, "mops")?,
            })
        })
        .collect()
}

/// Diffs a fresh run's kernel throughputs against the committed baseline,
/// with the same host normalization as [`diff_perf`]: when both runs carry
/// a reference-kernel entry, each kernel's MOPS is divided by its run's
/// reference MOPS, so the floor is a ratio of simulator-kernel speed to
/// host speed rather than a raw number some slower machine could never
/// meet.
///
/// A baseline with no kernel entries predates the kernel rows: nothing is
/// pinned and the diff is empty (refreshing the baseline starts enforcing
/// the floors). A baseline *with* kernels against a fresh run without them
/// is a violation — losing the measurement would silently retire the gate.
#[must_use]
pub fn diff_kernels(
    baseline: &[KernelMops],
    fresh: &[KernelMops],
    baseline_ref: Option<f64>,
    fresh_ref: Option<f64>,
    max_regression: f64,
) -> Vec<String> {
    if baseline.is_empty() {
        return Vec::new();
    }
    let mut violations = Vec::new();
    if fresh.is_empty() {
        violations.push(format!(
            "baseline pins {} kernel floor(s) but the fresh run measured no kernels — \
             the kernel gate would pass vacuously",
            baseline.len()
        ));
    }
    let (base_div, fresh_div, normalized) = match (baseline_ref, fresh_ref) {
        (Some(b), Some(f)) if b > 0.0 && f > 0.0 => (b, f, true),
        _ => (1.0, 1.0, false),
    };
    for b in baseline {
        match fresh.iter().find(|f| f.kernel == b.kernel) {
            None if fresh.is_empty() => {} // already reported above
            None => violations.push(format!(
                "kernel {}: present in the baseline but missing from the fresh run",
                b.kernel
            )),
            Some(f) => {
                let base_norm = b.mops / base_div;
                let fresh_norm = f.mops / fresh_div;
                let floor = base_norm * (1.0 - max_regression);
                if fresh_norm < floor {
                    let unit = if normalized {
                        "normalized MOPS (kernel MOPS per reference MOPS)"
                    } else {
                        "MOPS"
                    };
                    violations.push(format!(
                        "kernel {}: {:.4} {unit} is below the allowed floor {:.4} \
                         (baseline {:.4}, max regression {:.0}%)",
                        b.kernel,
                        fresh_norm,
                        floor,
                        base_norm,
                        max_regression * 100.0
                    ));
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden() -> GoldenAccuracy {
        GoldenAccuracy {
            scale: ExperimentScale::quick(),
            tolerance: 0.02,
            rows: vec![
                GoldenRow {
                    figure: "fig5".into(),
                    benchmark: "gcc".into(),
                    error: 0.085,
                },
                GoldenRow {
                    figure: "hybrid-periodic-4@2000".into(),
                    benchmark: "mcf".into(),
                    error: 0.031,
                },
            ],
        }
    }

    #[test]
    fn golden_file_round_trips_through_render_and_parse() {
        let g = golden();
        let text = render_golden_accuracy(g.scale, g.tolerance, &g.rows);
        let parsed = parse_golden_accuracy(&text).unwrap();
        assert_eq!(parsed.scale, g.scale);
        assert!((parsed.tolerance - g.tolerance).abs() < 1e-9);
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(parsed.rows[0].figure, "fig5");
        assert!((parsed.rows[1].error - 0.031).abs() < 1e-6);
    }

    #[test]
    fn matching_rows_pass_the_accuracy_gate() {
        let g = golden();
        // Within tolerance: tiny platform wiggle.
        let mut current = g.rows.clone();
        current[0].error += 0.019;
        assert!(diff_accuracy(&g, &current).is_empty());
    }

    #[test]
    fn injected_accuracy_drift_fails_the_gate() {
        let g = golden();
        let mut current = g.rows.clone();
        current[0].error += 0.05; // injected drift beyond the 0.02 tolerance
        let violations = diff_accuracy(&g, &current);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("fig5 / gcc"), "got: {violations:?}");
        assert!(violations[0].contains("drifted"));
    }

    #[test]
    fn missing_and_unpinned_rows_fail_the_gate() {
        let g = golden();
        let current = vec![
            g.rows[0].clone(),
            GoldenRow {
                figure: "fig5".into(),
                benchmark: "newbench".into(),
                error: 0.01,
            },
        ];
        let violations = diff_accuracy(&g, &current);
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().any(|v| v.contains("not produced")));
        assert!(violations.iter().any(|v| v.contains("not pinned")));
    }

    #[test]
    fn truncated_golden_file_fails_to_parse() {
        // A golden file cut off before its rows (e.g. a bad merge or a
        // partial write) used to parse to zero rows and pass the gate
        // vacuously; it must now be a parse error.
        let g = golden();
        let full = render_golden_accuracy(g.scale, g.tolerance, &g.rows);
        let cut = full.split("\"rows\"").next().unwrap();
        let err = parse_golden_accuracy(cut).unwrap_err();
        assert!(err.contains("no rows"), "got: {err}");
        // Keeping the `rows` header but dropping every entry is equally
        // truncated.
        let header_only = format!("{cut}\"rows\": [\n  ]\n}}\n");
        let err = parse_golden_accuracy(&header_only).unwrap_err();
        assert!(err.contains("no rows"), "got: {err}");
    }

    #[test]
    fn empty_golden_baseline_fails_the_accuracy_gate() {
        let empty = GoldenAccuracy {
            scale: ExperimentScale::quick(),
            tolerance: 0.02,
            rows: Vec::new(),
        };
        let current = golden().rows;
        let violations = diff_accuracy(&empty, &current);
        assert!(
            violations.iter().any(|v| v.contains("vacuously")),
            "got: {violations:?}"
        );
    }

    #[test]
    fn empty_fresh_accuracy_rows_fail_the_gate() {
        let g = golden();
        let violations = diff_accuracy(&g, &[]);
        // One vacuous-pass violation plus one not-produced violation per
        // pinned row.
        assert!(violations.len() > g.rows.len());
        assert!(violations.iter().any(|v| v.contains("vacuously")));
    }

    #[test]
    fn perf_file_parses_model_mips() {
        let text = "{\n  \"schema\": \"iss-bench-perf/v1\",\n  \"models\": [\n    \
                    {\"model\": \"interval\", \"instructions\": 120000, \
                    \"host_seconds\": 0.021, \"simulated_mips\": 5.71},\n    \
                    {\"model\": \"detailed\", \"instructions\": 120000, \
                    \"host_seconds\": 0.134, \"simulated_mips\": 0.89}\n  ]\n}\n";
        let models = parse_perf_models(text).unwrap();
        assert_eq!(models.len(), 2);
        assert_eq!(models[0].model, "interval");
        assert!((models[1].simulated_mips - 0.89).abs() < 1e-9);
    }

    #[test]
    fn injected_perf_regression_fails_the_gate() {
        let baseline = vec![
            ModelMips {
                model: "interval".into(),
                simulated_mips: 5.6,
            },
            ModelMips {
                model: "detailed".into(),
                simulated_mips: 0.9,
            },
        ];
        // Interval regresses by 50%: violation. Detailed speeds up: fine.
        let fresh = vec![
            ModelMips {
                model: "interval".into(),
                simulated_mips: 2.8,
            },
            ModelMips {
                model: "detailed".into(),
                simulated_mips: 1.2,
            },
        ];
        let violations = diff_perf(&baseline, &fresh, None, None, 0.25);
        assert_eq!(violations.len(), 1);
        assert!(
            violations[0].starts_with("interval:"),
            "got: {violations:?}"
        );
    }

    #[test]
    fn perf_within_margin_and_missing_model_behave() {
        let baseline = vec![ModelMips {
            model: "one-ipc".into(),
            simulated_mips: 8.0,
        }];
        let ok = vec![ModelMips {
            model: "one-ipc".into(),
            simulated_mips: 6.5, // ~19% down, within the 25% margin
        }];
        assert!(diff_perf(&baseline, &ok, None, None, 0.25).is_empty());
        // Empty fresh run: one vacuous-pass violation plus the missing
        // model.
        let violations = diff_perf(&baseline, &[], None, None, 0.25);
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().any(|v| v.contains("vacuously")));
        assert!(violations.iter().any(|v| v.contains("missing")));
    }

    #[test]
    fn empty_perf_baseline_fails_the_gate() {
        let fresh = vec![ModelMips {
            model: "interval".into(),
            simulated_mips: 5.0,
        }];
        let violations = diff_perf(&[], &fresh, None, None, 0.25);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("vacuously"), "got: {violations:?}");
    }

    #[test]
    fn reference_kernel_parses_and_rejects_degenerate_values() {
        let text = "{\n  \"schema\": \"iss-bench-perf/v1\",\n  \
                    \"reference_kernel_mops\": 812.503,\n}\n";
        let mops = parse_reference_kernel(text).unwrap();
        assert!((mops - 812.503).abs() < 1e-9);
        assert_eq!(parse_reference_kernel("{\"schema\": \"x\"}"), None);
        let zero = "{\n  \"reference_kernel_mops\": 0.000,\n}\n";
        assert_eq!(parse_reference_kernel(zero), None);
    }

    #[test]
    fn kernel_normalization_cancels_a_uniformly_slow_host() {
        let baseline = vec![ModelMips {
            model: "interval".into(),
            simulated_mips: 10.0,
        }];
        // The fresh host runs everything at 40% speed — a raw comparison
        // would flag a 60% "regression", but the reference kernel slowed
        // down identically, so the normalized gate passes.
        let fresh = vec![ModelMips {
            model: "interval".into(),
            simulated_mips: 4.0,
        }];
        assert!(!diff_perf(&baseline, &fresh, None, None, 0.25).is_empty());
        assert!(diff_perf(&baseline, &fresh, Some(1000.0), Some(400.0), 0.25).is_empty());
    }

    fn kernel_rows() -> Vec<KernelMops> {
        vec![
            KernelMops {
                kernel: "tag_compare".into(),
                mops: 350.0,
            },
            KernelMops {
                kernel: "threshold_scan".into(),
                mops: 290.0,
            },
        ]
    }

    #[test]
    fn perf_file_parses_kernel_rows_and_tolerates_their_absence() {
        let text = "{\n  \"schema\": \"iss-bench-perf/v1\",\n  \"kernels\": [\n    \
                    {\"kernel\": \"tag_compare\", \"ops\": 2996000, \
                    \"host_seconds\": 0.009, \"mops\": 351.2},\n    \
                    {\"kernel\": \"tlb_access_batch\", \"ops\": 2996000, \
                    \"host_seconds\": 0.017, \"mops\": 176.4}\n  ]\n}\n";
        let kernels = parse_perf_kernels(text);
        assert_eq!(kernels.len(), 2);
        assert_eq!(kernels[0].kernel, "tag_compare");
        assert!((kernels[1].mops - 176.4).abs() < 1e-9);
        // Pre-kernel files simply have no rows — not a parse error.
        assert!(parse_perf_kernels("{\n  \"schema\": \"iss-bench-perf/v1\"\n}\n").is_empty());
    }

    #[test]
    fn injected_kernel_regression_fails_the_gate() {
        let baseline = kernel_rows();
        let mut fresh = kernel_rows();
        fresh[1].mops = 140.0; // threshold_scan lost half its speed
        let violations = diff_kernels(&baseline, &fresh, Some(800.0), Some(800.0), 0.25);
        assert_eq!(violations.len(), 1);
        assert!(
            violations[0].contains("threshold_scan"),
            "got: {violations:?}"
        );
        assert!(violations[0].contains("below the allowed floor"));
    }

    #[test]
    fn kernel_gate_normalizes_host_speed_like_the_model_gate() {
        let baseline = kernel_rows();
        // Uniformly 40%-speed host: raw comparison would flag both kernels,
        // the normalized one passes because the reference kernel slowed
        // identically.
        let fresh: Vec<KernelMops> = kernel_rows()
            .into_iter()
            .map(|k| KernelMops {
                mops: k.mops * 0.4,
                ..k
            })
            .collect();
        assert!(!diff_kernels(&baseline, &fresh, None, None, 0.25).is_empty());
        assert!(diff_kernels(&baseline, &fresh, Some(1000.0), Some(400.0), 0.25).is_empty());
    }

    #[test]
    fn pre_kernel_baseline_skips_but_lost_measurement_fails() {
        // Baseline without kernel rows: nothing pinned, gate is silent.
        assert!(diff_kernels(&[], &kernel_rows(), Some(800.0), Some(800.0), 0.25).is_empty());
        // Baseline with rows but a fresh run without them: loud failure,
        // not a vacuous pass.
        let violations = diff_kernels(&kernel_rows(), &[], Some(800.0), Some(800.0), 0.25);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("vacuously"), "got: {violations:?}");
        // A single dropped kernel is flagged by name.
        let partial = vec![kernel_rows().remove(0)];
        let violations = diff_kernels(&kernel_rows(), &partial, Some(800.0), Some(800.0), 0.25);
        assert_eq!(violations.len(), 1);
        assert!(
            violations[0].contains("threshold_scan") && violations[0].contains("missing"),
            "got: {violations:?}"
        );
    }

    #[test]
    fn kernel_normalization_still_gates_real_regressions() {
        let baseline = vec![ModelMips {
            model: "interval".into(),
            simulated_mips: 10.0,
        }];
        // Same host speed (equal kernel MOPS) but the simulator itself lost
        // half its throughput: normalization must not absolve it.
        let fresh = vec![ModelMips {
            model: "interval".into(),
            simulated_mips: 5.0,
        }];
        let violations = diff_perf(&baseline, &fresh, Some(800.0), Some(800.0), 0.25);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("normalized"), "got: {violations:?}");
        // A pre-calibration baseline (no kernel entry) falls back to the
        // raw comparison rather than passing vacuously.
        let raw = diff_perf(&baseline, &fresh, None, Some(800.0), 0.25);
        assert_eq!(raw.len(), 1);
        assert!(raw[0].contains("simulated MIPS"), "got: {raw:?}");
    }
}
