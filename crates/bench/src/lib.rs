//! # iss-bench — the `iss` scenario CLI, figure shims and benchmarks
//!
//! The `iss` binary is the front door: `iss run <spec-or-figure>` executes
//! any scenario file or built-in figure sweep through the generic scenario
//! engine, `iss validate` checks spec files without simulating, `iss list`
//! names what is available. The per-figure binaries (`fig4` .. `fig10`,
//! `fig_hybrid`, `fig_sampling`, `ablation`, `table1`) are thin shims over
//! the same built-in sweeps ([`scenarios`]), kept for CI and muscle
//! memory; the Criterion benches under `benches/` measure the host-side
//! cost of interval vs detailed simulation (the quantity behind Figures 9
//! and 10).
//!
//! The instruction budget of the binaries is controlled by the
//! `ISS_EXPERIMENT_SCALE` environment variable: `quick` (default for CI
//! smoke runs), `full` (the paper-style runs), or a number of instructions
//! per benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gates;
pub mod scenarios;

// Strict environment parsing is shared across the workspace in
// `iss_sim::env`; re-exported here so every bench binary (and downstream
// user) reaches it through one path with one loud-failure contract.
pub use iss_sim::env::{parse_scale, scale_from_env};

/// The subset of SPEC benchmarks used when a binary is asked for a quick run
/// (one representative per behaviour class).
pub const SPEC_QUICK: [&str; 6] = ["gcc", "gzip", "mcf", "twolf", "swim", "mesa"];

/// The subset of PARSEC benchmarks used for quick runs.
pub const PARSEC_QUICK: [&str; 4] = ["blackscholes", "canneal", "fluidanimate", "vips"];

/// Core counts swept by the multi-core figures.
pub const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[cfg(test)]
mod tests {
    use super::*;
    use iss_sim::experiments::ExperimentScale;

    #[test]
    fn env_scale_parses_known_values() {
        // The environment is not modified here (tests may run concurrently);
        // only the default path is exercised.
        let s = scale_from_env();
        assert!(s.spec_length > 0 && s.parsec_length > 0);
    }

    #[test]
    fn re_exported_scale_parser_is_the_shared_one() {
        assert_eq!(
            parse_scale(Some("quick")).unwrap(),
            ExperimentScale::quick()
        );
        assert!(parse_scale(Some("ful")).is_err());
    }

    #[test]
    fn quick_subsets_exist_in_catalog() {
        for b in SPEC_QUICK {
            assert!(iss_trace::catalog::spec_profile(b).is_some(), "{b} missing");
        }
        for b in PARSEC_QUICK {
            assert!(
                iss_trace::catalog::parsec_profile(b).is_some(),
                "{b} missing"
            );
        }
    }
}
