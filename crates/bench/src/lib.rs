//! # iss-bench — figure regeneration and performance benchmarks
//!
//! One binary per figure/table of the paper (`fig4` .. `fig10`, `table1`)
//! prints the rows the corresponding figure plots; the Criterion benches
//! under `benches/` measure the host-side cost of interval vs detailed
//! simulation (the quantity behind Figures 9 and 10).
//!
//! The instruction budget of the binaries is controlled by the
//! `ISS_EXPERIMENT_SCALE` environment variable: `quick` (default for CI
//! smoke runs), `full` (the paper-style runs), or a number of instructions
//! per benchmark.

pub mod gates;

use iss_sim::experiments::ExperimentScale;

/// Reads the experiment scale from `ISS_EXPERIMENT_SCALE`.
///
/// Accepted values: `quick`, `full`, or an integer instruction count per
/// SPEC benchmark (PARSEC workloads get twice that budget). Unknown values
/// fall back to `quick`.
#[must_use]
pub fn scale_from_env() -> ExperimentScale {
    match std::env::var("ISS_EXPERIMENT_SCALE") {
        Ok(v) if v.eq_ignore_ascii_case("full") => ExperimentScale::full(),
        Ok(v) if v.eq_ignore_ascii_case("quick") => ExperimentScale::quick(),
        Ok(v) => match v.parse::<u64>() {
            Ok(n) if n > 0 => ExperimentScale {
                spec_length: n,
                parsec_length: n * 2,
                seed: 42,
            },
            _ => ExperimentScale::quick(),
        },
        Err(_) => ExperimentScale::quick(),
    }
}

/// The subset of SPEC benchmarks used when a binary is asked for a quick run
/// (one representative per behaviour class).
pub const SPEC_QUICK: [&str; 6] = ["gcc", "gzip", "mcf", "twolf", "swim", "mesa"];

/// The subset of PARSEC benchmarks used for quick runs.
pub const PARSEC_QUICK: [&str; 4] = ["blackscholes", "canneal", "fluidanimate", "vips"];

/// Core counts swept by the multi-core figures.
pub const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_scale_parses_known_values() {
        // The environment is not modified here (tests may run concurrently);
        // only the default path is exercised.
        let s = scale_from_env();
        assert!(s.spec_length > 0 && s.parsec_length > 0);
    }

    #[test]
    fn quick_subsets_exist_in_catalog() {
        for b in SPEC_QUICK {
            assert!(iss_trace::catalog::spec_profile(b).is_some(), "{b} missing");
        }
        for b in PARSEC_QUICK {
            assert!(
                iss_trace::catalog::parsec_profile(b).is_some(),
                "{b} missing"
            );
        }
    }
}
