//! # iss-bench — figure regeneration and performance benchmarks
//!
//! One binary per figure/table of the paper (`fig4` .. `fig10`, `table1`)
//! prints the rows the corresponding figure plots; the Criterion benches
//! under `benches/` measure the host-side cost of interval vs detailed
//! simulation (the quantity behind Figures 9 and 10).
//!
//! The instruction budget of the binaries is controlled by the
//! `ISS_EXPERIMENT_SCALE` environment variable: `quick` (default for CI
//! smoke runs), `full` (the paper-style runs), or a number of instructions
//! per benchmark.

pub mod gates;

use iss_sim::experiments::ExperimentScale;

/// Parses an `ISS_EXPERIMENT_SCALE` value into an [`ExperimentScale`].
///
/// `None` (variable unset) and the empty string select `quick`. Anything
/// else must be `quick`, `full` (case-insensitive) or a positive integer
/// instruction count per SPEC benchmark (PARSEC workloads get twice that
/// budget, saturating instead of overflowing). Unknown strings, `0`,
/// negative and overflowing numbers are **rejected** rather than silently
/// falling back to `quick` — a typo like `ISS_EXPERIMENT_SCALE=ful` must
/// not quietly turn a "full" accuracy run into a quick one (the same
/// contract [`iss_sim::batch::parse_thread_count`] gives `ISS_THREADS`).
///
/// # Errors
///
/// Returns a message naming the offending value when it is neither a known
/// keyword nor a positive integer.
pub fn parse_scale(value: Option<&str>) -> Result<ExperimentScale, String> {
    let Some(raw) = value else {
        return Ok(ExperimentScale::quick());
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(ExperimentScale::quick());
    }
    if trimmed.eq_ignore_ascii_case("quick") {
        return Ok(ExperimentScale::quick());
    }
    if trimmed.eq_ignore_ascii_case("full") {
        return Ok(ExperimentScale::full());
    }
    match trimmed.parse::<u64>() {
        Ok(0) => Err(
            "ISS_EXPERIMENT_SCALE must be `quick`, `full`, or a positive instruction \
             count, got `0` (unset the variable to run at quick scale)"
                .to_string(),
        ),
        Ok(n) => Ok(ExperimentScale {
            spec_length: n,
            parsec_length: n.saturating_mul(2),
            seed: 42,
        }),
        Err(_) => Err(format!(
            "ISS_EXPERIMENT_SCALE must be `quick`, `full`, or a positive instruction \
             count, got `{trimmed}` (unset the variable to run at quick scale)"
        )),
    }
}

/// Reads the experiment scale from `ISS_EXPERIMENT_SCALE` (see
/// [`parse_scale`] for the accepted values).
///
/// # Panics
///
/// Panics with a clear message when the variable is set to an unknown
/// keyword, `0`, or a non-positive/overflowing number, instead of silently
/// running at the wrong scale.
#[must_use]
pub fn scale_from_env() -> ExperimentScale {
    let value = std::env::var("ISS_EXPERIMENT_SCALE").ok();
    parse_scale(value.as_deref()).unwrap_or_else(|e| panic!("{e}"))
}

/// The subset of SPEC benchmarks used when a binary is asked for a quick run
/// (one representative per behaviour class).
pub const SPEC_QUICK: [&str; 6] = ["gcc", "gzip", "mcf", "twolf", "swim", "mesa"];

/// The subset of PARSEC benchmarks used for quick runs.
pub const PARSEC_QUICK: [&str; 4] = ["blackscholes", "canneal", "fluidanimate", "vips"];

/// Core counts swept by the multi-core figures.
pub const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_scale_parses_known_values() {
        // The environment is not modified here (tests may run concurrently);
        // only the default path is exercised.
        let s = scale_from_env();
        assert!(s.spec_length > 0 && s.parsec_length > 0);
    }

    #[test]
    fn scale_parsing_accepts_keywords_numbers_and_unset() {
        assert_eq!(parse_scale(None).unwrap(), ExperimentScale::quick());
        assert_eq!(parse_scale(Some("")).unwrap(), ExperimentScale::quick());
        assert_eq!(parse_scale(Some("  ")).unwrap(), ExperimentScale::quick());
        assert_eq!(
            parse_scale(Some("quick")).unwrap(),
            ExperimentScale::quick()
        );
        assert_eq!(
            parse_scale(Some("QUICK")).unwrap(),
            ExperimentScale::quick()
        );
        assert_eq!(parse_scale(Some("full")).unwrap(), ExperimentScale::full());
        assert_eq!(parse_scale(Some("Full")).unwrap(), ExperimentScale::full());
        let custom = parse_scale(Some(" 50000 ")).unwrap();
        assert_eq!(custom.spec_length, 50_000);
        assert_eq!(custom.parsec_length, 100_000);
        assert_eq!(custom.seed, 42);
    }

    #[test]
    fn scale_parsing_saturates_the_parsec_budget() {
        let huge = parse_scale(Some(&u64::MAX.to_string())).unwrap();
        assert_eq!(huge.spec_length, u64::MAX);
        assert_eq!(huge.parsec_length, u64::MAX, "must saturate, not overflow");
    }

    #[test]
    fn scale_parsing_rejects_typos_zero_and_bad_numbers_loudly() {
        // The motivating bug: `ful` used to silently select quick scale.
        let typo = parse_scale(Some("ful")).unwrap_err();
        assert!(typo.contains("`ful`"), "got: {typo}");
        let zero = parse_scale(Some("0")).unwrap_err();
        assert!(zero.contains("`0`"), "got: {zero}");
        let negative = parse_scale(Some("-5")).unwrap_err();
        assert!(negative.contains("`-5`"), "got: {negative}");
        // Larger than u64::MAX: the integer parse fails, which must surface
        // as an error, not a silent quick run.
        let overflow = parse_scale(Some("99999999999999999999999")).unwrap_err();
        assert!(
            overflow.contains("99999999999999999999999"),
            "got: {overflow}"
        );
        let junk = parse_scale(Some("fast")).unwrap_err();
        assert!(junk.contains("`fast`"), "got: {junk}");
    }

    #[test]
    fn quick_subsets_exist_in_catalog() {
        for b in SPEC_QUICK {
            assert!(iss_trace::catalog::spec_profile(b).is_some(), "{b} missing");
        }
        for b in PARSEC_QUICK {
            assert!(
                iss_trace::catalog::parsec_profile(b).is_some(),
                "{b} missing"
            );
        }
    }
}
