//! Ablation study over the interval model's design choices: second-order
//! overlap modeling, the old-window reset on miss events, and the one-IPC
//! simplification, all measured against detailed simulation.

use iss_bench::{scale_from_env, SPEC_QUICK};
use iss_sim::experiments::ablation;
use iss_sim::metrics;

fn main() {
    let rows = ablation(&SPEC_QUICK, scale_from_env());
    println!("Ablation — relative IPC error against detailed simulation");
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>14} {:>10}",
        "benchmark", "detailed", "interval", "no-overlap", "no-ow-reset", "one-IPC"
    );
    let mut per_variant = vec![Vec::new(); 4];
    for r in &rows {
        let e = r.errors();
        for (v, err) in e.iter().enumerate() {
            per_variant[v].push(*err);
        }
        println!(
            "{:<10} {:>10.3} {:>11.1}% {:>13.1}% {:>13.1}% {:>9.1}%",
            r.benchmark,
            r.detailed_ipc,
            e[0] * 100.0,
            e[1] * 100.0,
            e[2] * 100.0,
            e[3] * 100.0
        );
    }
    println!(
        "average errors: interval {:.1}%, no-overlap {:.1}%, no-ow-reset {:.1}%, one-IPC {:.1}%",
        metrics::mean(&per_variant[0]) * 100.0,
        metrics::mean(&per_variant[1]) * 100.0,
        metrics::mean(&per_variant[2]) * 100.0,
        metrics::mean(&per_variant[3]) * 100.0
    );
}
