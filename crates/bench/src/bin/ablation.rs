//! Shim over the generic scenario engine for the ablation study (overlap
//! modeling, old-window reset, one-IPC — all against detailed simulation).
//! Equivalent to `iss run ablation`.

use iss_bench::SPEC_QUICK;
use iss_sim::env::scale_from_env;
use iss_sim::experiments::ablation;
use iss_sim::report::format_comparison_table;

fn main() {
    let records = ablation(&SPEC_QUICK, scale_from_env());
    println!(
        "{}",
        format_comparison_table(
            "Ablation — relative CPI error against detailed simulation",
            &records,
            "detailed"
        )
    );
}
