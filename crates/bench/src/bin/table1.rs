//! Prints the baseline system configuration (Table 1 of the paper).

use iss_sim::config::SystemConfig;

fn main() {
    let c = SystemConfig::hpca2010_baseline(8);
    println!("Table 1 — baseline processor core model");
    println!("----------------------------------------");
    println!(
        "ROB entries                 {}",
        c.detailed_core.rob_entries
    );
    println!(
        "issue queue entries         {}",
        c.detailed_core.issue_queue_entries
    );
    println!(
        "load/store queue entries    {}",
        c.detailed_core.lsq_entries
    );
    println!(
        "store buffer entries        {}",
        c.detailed_core.store_buffer_entries
    );
    println!(
        "decode/dispatch/commit      {}-wide",
        c.detailed_core.dispatch_width
    );
    println!(
        "issue width                 {}-wide",
        c.detailed_core.issue_width
    );
    println!(
        "fetch width                 {}-wide",
        c.detailed_core.fetch_width
    );
    println!(
        "fetch queue entries         {}",
        c.detailed_core.fetch_queue_entries
    );
    println!(
        "front-end pipeline depth    {} stages",
        c.detailed_core.frontend_pipeline_depth
    );
    println!(
        "functional units            {} int, {} load/store, {} fp",
        c.detailed_core.int_units, c.detailed_core.mem_units, c.detailed_core.fp_units
    );
    println!(
        "branch predictor            {} bit local predictor, {}-entry RAS, {}-way {}-entry BTB",
        c.branch.direction_storage_bits(),
        c.branch.ras_entries,
        c.branch.btb_ways,
        c.branch.btb_entries
    );
    println!(
        "L1 I-cache                  {} KB {}-way",
        c.memory.l1i.size_bytes / 1024,
        c.memory.l1i.ways
    );
    println!(
        "L1 D-cache                  {} KB {}-way",
        c.memory.l1d.size_bytes / 1024,
        c.memory.l1d.ways
    );
    if let Some(l2) = c.memory.l2 {
        println!(
            "L2 cache                    shared {} MB {}-way, {} cycles",
            l2.size_bytes / (1024 * 1024),
            l2.ways,
            l2.latency
        );
    }
    println!("coherence protocol          MOESI");
    println!(
        "main memory                 {} cycle access",
        c.memory.dram.access_latency
    );
    println!(
        "memory bandwidth            {:.1} bytes/cycle peak",
        c.memory.dram.bus_bytes_per_cycle
    );
}
