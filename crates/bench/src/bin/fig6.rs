//! Shim over the generic scenario engine for Figure 6 (multi-program STP
//! and ANTT). Equivalent to `iss run fig6`.

use iss_bench::{scenarios::FIG6_BENCHMARKS, CORE_COUNTS};
use iss_sim::env::scale_from_env;
use iss_sim::experiments::fig6;
use iss_sim::report::format_stp_antt_table;

fn main() {
    let records = fig6(&FIG6_BENCHMARKS, &CORE_COUNTS, scale_from_env());
    println!(
        "{}",
        format_stp_antt_table(
            "Figure 6 — multi-program SPEC workloads (STP and ANTT vs copies)",
            &records
        )
    );
}
