//! Regenerates Figure 6: STP and ANTT of homogeneous multi-program workloads.

use iss_bench::{scale_from_env, CORE_COUNTS};
use iss_sim::experiments::fig6;
use iss_sim::report::format_fig6_table;
use iss_trace::catalog::FIG6_BENCHMARKS;

fn main() {
    let rows = fig6(&FIG6_BENCHMARKS, &CORE_COUNTS, scale_from_env());
    println!("Figure 6 — multi-program SPEC workloads (STP and ANTT vs copies)");
    println!("{}", format_fig6_table(&rows));
}
