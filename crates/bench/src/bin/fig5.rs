//! Regenerates Figure 5: single-threaded IPC, detailed vs interval.

use iss_bench::{scale_from_env, SPEC_QUICK};
use iss_sim::experiments::fig5;
use iss_sim::report::format_accuracy_table;
use iss_trace::catalog::SPEC_CPU2000;

fn main() {
    let all = std::env::args().any(|a| a == "--all-benchmarks");
    let benchmarks: Vec<&str> = if all {
        SPEC_CPU2000.to_vec()
    } else {
        SPEC_QUICK.to_vec()
    };
    let rows = fig5(&benchmarks, scale_from_env());
    println!(
        "{}",
        format_accuracy_table("Figure 5 — single-threaded SPEC CPU accuracy", &rows)
    );
}
