//! Shim over the generic scenario engine for Figure 5 (single-threaded
//! accuracy). Equivalent to `iss run fig5`.

use iss_bench::SPEC_QUICK;
use iss_sim::env::scale_from_env;
use iss_sim::experiments::fig5;
use iss_sim::report::format_comparison_table;
use iss_trace::catalog::SPEC_CPU2000;

fn main() {
    let all = std::env::args().any(|a| a == "--all-benchmarks");
    let benchmarks: Vec<&str> = if all {
        SPEC_CPU2000.to_vec()
    } else {
        SPEC_QUICK.to_vec()
    };
    let records = fig5(&benchmarks, scale_from_env());
    println!(
        "{}",
        format_comparison_table(
            "Figure 5 — single-threaded SPEC CPU accuracy",
            &records,
            "detailed"
        )
    );
}
