//! The sampled-simulation speed-vs-error-vs-confidence frontier: per
//! benchmark and sampling spec, how much wall-clock sampling saves over pure
//! detailed simulation, how much CPI accuracy it gives up, and how wide the
//! reported 95% confidence interval is — with pure detailed and pure
//! interval simulation as the two reference points.
//!
//! `--all-benchmarks` sweeps the full SPEC CPU2000 catalog instead of the
//! quick subset; `ISS_EXPERIMENT_SCALE` controls the instruction budget.

use iss_bench::{scale_from_env, SPEC_QUICK};
use iss_sim::experiments::{default_sampling_specs, fig_sampling};
use iss_sim::report::format_sampling_table;
use iss_trace::catalog::SPEC_CPU2000;

fn main() {
    let all = std::env::args().any(|a| a == "--all-benchmarks");
    let benchmarks: Vec<&str> = if all {
        SPEC_CPU2000.to_vec()
    } else {
        SPEC_QUICK.to_vec()
    };
    let scale = scale_from_env();
    let specs = default_sampling_specs(scale);
    let rows = fig_sampling(&benchmarks, &specs, scale);
    println!("Sampled simulation — speed vs CPI-error vs confidence frontier");
    println!("(references: pure detailed and pure interval on the same workloads)\n");
    print!("{}", format_sampling_table(&rows));
    let best = rows
        .iter()
        .filter(|r| r.cpi_error() <= 0.05)
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()));
    match best {
        Some(r) => println!(
            "\nbest point within 5% CPI error: {} on {} — {:.1}x at {:.1}% error \
             (95% CI half-width {:.3} CPI)",
            r.spec_label,
            r.benchmark,
            r.speedup(),
            r.cpi_error() * 100.0,
            r.ci95_half_width
        ),
        None => println!("\nno point stayed within 5% CPI error at this scale"),
    }
}
