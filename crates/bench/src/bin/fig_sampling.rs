//! Shim over the generic scenario engine for the sampled-simulation
//! speed-vs-error-vs-confidence frontier. Equivalent to `iss run sampling`.
//!
//! `--all-benchmarks` sweeps the full SPEC CPU2000 catalog instead of the
//! quick subset; `ISS_EXPERIMENT_SCALE` controls the instruction budget.

use iss_bench::SPEC_QUICK;
use iss_sim::env::scale_from_env;
use iss_sim::experiments::{default_sampling_specs, fig_sampling};
use iss_sim::report::{format_comparison_table, groups};
use iss_trace::catalog::SPEC_CPU2000;

fn main() {
    let all = std::env::args().any(|a| a == "--all-benchmarks");
    let benchmarks: Vec<&str> = if all {
        SPEC_CPU2000.to_vec()
    } else {
        SPEC_QUICK.to_vec()
    };
    let scale = scale_from_env();
    let specs = default_sampling_specs(scale);
    let records = fig_sampling(&benchmarks, &specs, scale);
    println!("Sampled simulation — speed vs CPI-error vs confidence frontier");
    println!("(references: pure detailed and pure interval on the same workloads)\n");
    print!(
        "{}",
        format_comparison_table("sampling", &records, "detailed")
    );
    let best = groups(&records)
        .into_iter()
        .filter_map(|group| {
            let detailed = group.variant("detailed")?;
            group
                .records
                .iter()
                .filter(|r| r.sampling.is_some() && r.cpi_error_vs(detailed) <= 0.05)
                .map(|r| {
                    (
                        r.variant.clone(),
                        group.key.to_string(),
                        r.speedup_vs(detailed),
                        r.cpi_error_vs(detailed),
                        r.ci95_half_width().unwrap_or(f64::INFINITY),
                    )
                })
                .max_by(|a, b| a.2.total_cmp(&b.2))
        })
        .max_by(|a, b| a.2.total_cmp(&b.2));
    match best {
        Some((spec, benchmark, speedup, error, ci)) => println!(
            "\nbest point within 5% CPI error: {spec} on {benchmark} — \
             {speedup:.1}x at {:.1}% error (95% CI half-width {ci:.3} CPI)",
            error * 100.0
        ),
        None => println!("\nno point stayed within 5% CPI error at this scale"),
    }
}
