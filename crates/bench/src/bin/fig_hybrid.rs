//! Shim over the generic scenario engine for the hybrid
//! speed-vs-CPI-error frontier. Equivalent to `iss run hybrid`.
//!
//! `--all-benchmarks` sweeps the full SPEC CPU2000 catalog instead of the
//! quick subset; `ISS_EXPERIMENT_SCALE` controls the instruction budget.

use iss_bench::SPEC_QUICK;
use iss_sim::env::scale_from_env;
use iss_sim::experiments::{default_hybrid_policies, fig_hybrid};
use iss_sim::report::{format_comparison_table, groups};
use iss_trace::catalog::SPEC_CPU2000;

fn main() {
    let all = std::env::args().any(|a| a == "--all-benchmarks");
    let benchmarks: Vec<&str> = if all {
        SPEC_CPU2000.to_vec()
    } else {
        SPEC_QUICK.to_vec()
    };
    let scale = scale_from_env();
    let policies = default_hybrid_policies(scale);
    let records = fig_hybrid(&benchmarks, &policies, scale);
    println!("Hybrid simulation — speed vs CPI-error frontier");
    println!("(interval quantum per policy label; reference: pure detailed)\n");
    print!(
        "{}",
        format_comparison_table("hybrid", &records, "detailed")
    );
    let best = groups(&records)
        .into_iter()
        .filter_map(|group| {
            let detailed = group.variant("detailed")?;
            group
                .records
                .iter()
                .filter(|r| r.variant != "detailed" && r.cpi_error_vs(detailed) <= 0.05)
                .map(|r| {
                    (
                        r.variant.clone(),
                        group.key.to_string(),
                        r.speedup_vs(detailed),
                        r.cpi_error_vs(detailed),
                    )
                })
                .max_by(|a, b| a.2.total_cmp(&b.2))
        })
        .max_by(|a, b| a.2.total_cmp(&b.2));
    match best {
        Some((policy, benchmark, speedup, error)) => println!(
            "\nbest point within 5% CPI error: {policy} on {benchmark} — \
             {speedup:.1}x at {:.1}% error",
            error * 100.0
        ),
        None => println!("\nno point stayed within 5% CPI error at this scale"),
    }
}
