//! The hybrid speed-vs-CPI-error frontier: per benchmark and swap policy,
//! how much wall-clock the policy saves over pure detailed simulation and
//! how much CPI accuracy it gives up.
//!
//! `--all-benchmarks` sweeps the full SPEC CPU2000 catalog instead of the
//! quick subset; `ISS_EXPERIMENT_SCALE` controls the instruction budget.

use iss_bench::{scale_from_env, SPEC_QUICK};
use iss_sim::experiments::{default_hybrid_policies, fig_hybrid};
use iss_sim::report::format_hybrid_table;
use iss_trace::catalog::SPEC_CPU2000;

fn main() {
    let all = std::env::args().any(|a| a == "--all-benchmarks");
    let benchmarks: Vec<&str> = if all {
        SPEC_CPU2000.to_vec()
    } else {
        SPEC_QUICK.to_vec()
    };
    let scale = scale_from_env();
    let policies = default_hybrid_policies(scale);
    let rows = fig_hybrid(&benchmarks, &policies, scale);
    println!("Hybrid simulation — speed vs CPI-error frontier");
    println!("(interval quantum per policy label; reference: pure detailed)\n");
    print!("{}", format_hybrid_table(&rows));
    let best = rows
        .iter()
        .filter(|r| r.cpi_error() <= 0.05)
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()));
    match best {
        Some(r) => println!(
            "\nbest point within 5% CPI error: {} on {} — {:.1}x at {:.1}% error",
            r.policy,
            r.benchmark,
            r.speedup(),
            r.cpi_error() * 100.0
        ),
        None => println!("\nno point stayed within 5% CPI error at this scale"),
    }
}
