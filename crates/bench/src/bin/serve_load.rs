//! Load-test harness for `iss serve`: replays a stream of scenario
//! requests against a running server and reports cache hit rate, request
//! latency (p50/p99) and worker utilization — the numbers that tell you
//! whether the result store is actually absorbing production traffic.
//!
//! ```text
//! serve_load --addr HOST:PORT --spec PATH [--spec PATH ...]
//!            [--requests N] [--concurrency C]
//!            [--expect-hit-rate PCT] [--shutdown]
//! ```
//!
//! Requests round-robin over the spec files (`--requests` total,
//! `--concurrency` client threads, each request on a fresh connection
//! like a real client). The harness also verifies the cache contract as
//! it goes: every response for a given spec must be **byte-identical** to
//! the first response observed for that spec — a cached record that
//! drifts from the simulation that populated it is a correctness failure,
//! not a performance problem.
//!
//! Exits non-zero on any byte-identity violation, or when the observed
//! job-level hit rate is below `--expect-hit-rate` (CI replays a request
//! set twice and demands 100 on the second pass).

use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use iss_sim::host_time::HostTimer;
use iss_sim::serve::Client;

struct Options {
    addr: String,
    specs: Vec<(String, String)>,
    requests: usize,
    concurrency: usize,
    expect_hit_rate: Option<f64>,
    shutdown: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut addr = None;
    let mut spec_paths: Vec<String> = Vec::new();
    let mut requests = None;
    let mut concurrency = 1usize;
    let mut expect_hit_rate = None;
    let mut shutdown = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                addr = Some(it.next().ok_or("--addr needs a HOST:PORT operand")?.clone());
            }
            "--spec" => {
                spec_paths.push(it.next().ok_or("--spec needs a file path")?.clone());
            }
            "--requests" => {
                requests = Some(
                    it.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--requests needs a positive integer")?,
                );
            }
            "--concurrency" => {
                concurrency = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--concurrency needs a positive integer")?;
            }
            "--expect-hit-rate" => {
                expect_hit_rate = Some(
                    it.next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|&p| (0.0..=100.0).contains(&p))
                        .ok_or("--expect-hit-rate needs a percentage in [0, 100]")?,
                );
            }
            "--shutdown" => shutdown = true,
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let addr = addr.ok_or("--addr is required")?;
    if spec_paths.is_empty() {
        return Err("at least one --spec is required".to_string());
    }
    let mut specs = Vec::new();
    for path in spec_paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        specs.push((path, text));
    }
    let requests = requests.unwrap_or(specs.len());
    Ok(Options {
        addr,
        specs,
        requests,
        concurrency,
        expect_hit_rate,
        shutdown,
    })
}

#[derive(Default)]
struct Tally {
    jobs: u64,
    hits: u64,
    misses: u64,
    coalesced: u64,
    latencies_ms: Vec<f64>,
    /// First response lines seen per spec index — the byte-identity
    /// baseline every later response is compared against.
    baselines: Vec<Option<Vec<String>>>,
    identity_violations: u64,
    errors: Vec<String>,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_ms.len() - 1) as f64).round();
    // The index is in [0, len): rank is clamped by construction.
    sorted_ms[rank.min((sorted_ms.len() - 1) as f64) as usize]
}

fn replay(options: &Options) -> Result<Tally, String> {
    let tally = Mutex::new(Tally {
        baselines: vec![None; options.specs.len()],
        ..Tally::default()
    });
    let next = AtomicUsize::new(0);
    let threads = options.concurrency.min(options.requests).max(1);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= options.requests {
                    break;
                }
                let spec_index = i % options.specs.len();
                let (path, text) = &options.specs[spec_index];
                let timer = HostTimer::start();
                let outcome = Client::connect(&options.addr).and_then(|mut c| c.run(text));
                let latency_ms = timer.elapsed_seconds() * 1e3;
                let mut t = tally
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                match outcome {
                    Ok(outcome) => {
                        t.jobs += outcome.jobs as u64;
                        t.hits += outcome.hits as u64;
                        t.misses += outcome.misses as u64;
                        t.coalesced += outcome.coalesced as u64;
                        t.latencies_ms.push(latency_ms);
                        match &t.baselines[spec_index] {
                            Some(baseline) => {
                                if baseline != &outcome.record_lines {
                                    t.identity_violations += 1;
                                    t.errors.push(format!(
                                        "{path}: response drifted from the first \
                                         response for this spec"
                                    ));
                                }
                            }
                            None => t.baselines[spec_index] = Some(outcome.record_lines),
                        }
                    }
                    Err(e) => t.errors.push(format!("{path}: {e}")),
                }
            });
        }
    });
    Ok(tally
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("serve_load: {e}");
            eprintln!(
                "usage: serve_load --addr HOST:PORT --spec PATH [--spec PATH ...] \
                 [--requests N] [--concurrency C] [--expect-hit-rate PCT] [--shutdown]"
            );
            return ExitCode::FAILURE;
        }
    };
    let mut tally = match replay(&options) {
        Ok(tally) => tally,
        Err(e) => {
            eprintln!("serve_load: {e}");
            return ExitCode::FAILURE;
        }
    };
    tally
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let hit_rate = if tally.jobs == 0 {
        0.0
    } else {
        tally.hits as f64 / tally.jobs as f64 * 100.0
    };
    println!(
        "serve_load: {} request(s) over {} spec(s), {} job(s): {} hit(s), {} miss(es), \
         {} coalesced — hit rate {hit_rate:.1}%",
        tally.latencies_ms.len(),
        options.specs.len(),
        tally.jobs,
        tally.hits,
        tally.misses,
        tally.coalesced
    );
    println!(
        "serve_load: latency p50 {:.2} ms, p99 {:.2} ms",
        percentile(&tally.latencies_ms, 50.0),
        percentile(&tally.latencies_ms, 99.0)
    );
    match Client::connect(&options.addr).and_then(|mut c| c.stats()) {
        Ok(stats) => println!(
            "serve_load: server: {} worker(s), utilization {:.1}%, {} cached entr(ies) \
             ({} bytes), {} eviction(s)",
            stats.workers,
            stats.worker_utilization() * 100.0,
            stats.entries,
            stats.store_bytes,
            stats.evictions
        ),
        Err(e) => eprintln!("serve_load: cannot fetch server stats: {e}"),
    }
    if options.shutdown {
        match Client::connect(&options.addr).and_then(|mut c| c.shutdown()) {
            Ok(()) => println!("serve_load: server acknowledged shutdown"),
            Err(e) => {
                eprintln!("serve_load: shutdown failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut failed = false;
    for e in &tally.errors {
        eprintln!("serve_load: error: {e}");
        failed = true;
    }
    if tally.identity_violations > 0 {
        eprintln!(
            "serve_load: FAIL — {} response(s) were not byte-identical to the first \
             response for their spec",
            tally.identity_violations
        );
        failed = true;
    }
    if let Some(expected) = options.expect_hit_rate {
        if hit_rate + 1e-9 < expected {
            eprintln!(
                "serve_load: FAIL — hit rate {hit_rate:.1}% is below the required \
                 {expected:.1}%"
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
