//! CI accuracy-regression gate.
//!
//! Recomputes the pinned accuracy numbers (Figure 4 variants, Figure 5, and
//! the hybrid CPI-error frontier) at the golden file's scale and diffs them
//! against `ci/golden_accuracy.json`. Any drift beyond the recorded
//! tolerance fails the build with one message per violated row.
//!
//! Usage:
//!   accuracy_gate \[path\]            # gate (default path ci/golden_accuracy.json)
//!   accuracy_gate --write \[path\]    # regenerate the golden file
//!
//! The simulated quantities behind every pinned number are deterministic, so
//! the gate needs no statistical slack beyond the recorded tolerance.

use std::process::ExitCode;

use iss_bench::gates::{
    compute_accuracy_rows, diff_accuracy, parse_golden_accuracy, render_golden_accuracy,
};
use iss_bench::SPEC_QUICK;
use iss_sim::experiments::ExperimentScale;

const DEFAULT_PATH: &str = "ci/golden_accuracy.json";
const DEFAULT_TOLERANCE: f64 = 0.02;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let write = args.iter().any(|a| a == "--write");
    let path = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| DEFAULT_PATH.to_string());

    if write {
        let scale = ExperimentScale::quick();
        println!("computing golden accuracy rows at quick scale...");
        let rows = compute_accuracy_rows(&SPEC_QUICK, scale);
        let text = render_golden_accuracy(scale, DEFAULT_TOLERANCE, &rows);
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {} rows to {path}", rows.len());
        return ExitCode::SUCCESS;
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("accuracy gate: cannot read {path}: {e}");
            eprintln!("generate it with: accuracy_gate --write {path}");
            return ExitCode::FAILURE;
        }
    };
    let golden = match parse_golden_accuracy(&text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("accuracy gate: cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "accuracy gate: {} pinned rows at scale {}/{} (seed {}), tolerance {:.4}",
        golden.rows.len(),
        golden.scale.spec_length,
        golden.scale.parsec_length,
        golden.scale.seed,
        golden.tolerance
    );
    let current = compute_accuracy_rows(&SPEC_QUICK, golden.scale);
    let violations = diff_accuracy(&golden, &current);
    if violations.is_empty() {
        println!(
            "accuracy gate: PASS ({} rows within tolerance)",
            current.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("accuracy gate: FAIL — {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        eprintln!("if the drift is an intended modeling change, regenerate with:");
        eprintln!("  cargo run --release -p iss-bench --bin accuracy_gate -- --write {path}");
        ExitCode::FAILURE
    }
}
