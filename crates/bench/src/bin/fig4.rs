//! Shim over the generic scenario engine for Figure 4 (component-wise
//! accuracy). Equivalent to `iss run fig4-<variant>`.
//!
//! Usage: `fig4 [a|b|c|d|all] [--all-benchmarks]`

use iss_bench::SPEC_QUICK;
use iss_sim::env::scale_from_env;
use iss_sim::experiments::{fig4, Fig4Variant};
use iss_sim::report::format_comparison_table;
use iss_trace::catalog::SPEC_CPU2000;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let all_benchmarks = args.iter().any(|a| a == "--all-benchmarks");
    let benchmarks: Vec<&str> = if all_benchmarks {
        SPEC_CPU2000.to_vec()
    } else {
        SPEC_QUICK.to_vec()
    };
    let scale = scale_from_env();
    let variants: Vec<Fig4Variant> = match which {
        "a" => vec![Fig4Variant::EffectiveDispatchRate],
        "b" => vec![Fig4Variant::ICache],
        "c" => vec![Fig4Variant::BranchPrediction],
        "d" => vec![Fig4Variant::L2Cache],
        _ => Fig4Variant::all().to_vec(),
    };
    for v in variants {
        let records = fig4(v, &benchmarks, scale);
        println!(
            "{}",
            format_comparison_table(&format!("Figure 4 ({})", v.label()), &records, "detailed")
        );
    }
}
