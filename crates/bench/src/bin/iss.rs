//! The scenario CLI: one front door for every experiment.
//!
//! ```text
//! iss run <spec.toml | builtin-name> [--threads N] [--reference VARIANT]
//!                                    [--json PATH]
//!                                    [--shard K/N | --jobs I,J,...]
//! iss sweep <spec.toml | builtin-name> [--shards N] [--checkpoint PATH]
//!                                      [--resume] [--json PATH] [--jsonl PATH]
//! iss serve [--addr HOST:PORT] [--workers N] [--cache-dir DIR]
//!           [--cache-max-mb N] [--evict]
//! iss validate <spec.toml | directory>...
//! iss lint <spec.toml | directory>...
//! iss list [directory]
//! iss export <builtin-name> [path]
//! iss export <spec.toml | builtin-name> --jsonl [path]
//! ```
//!
//! `run` executes a scenario file (or a built-in figure sweep by name)
//! through the generic engine and prints the unified record table plus,
//! when the sweep carries a reference variant (`detailed` by default), the
//! comparison view (CPI error, host-time speedup, CI coverage). With
//! `--shard K/N` or `--jobs I,J,...` it instead becomes the *child* of a
//! sharded sweep: it runs the selected expansion-order jobs serially and
//! streams one `Record` JSON line per job to stdout (no tables).
//! `sweep` is the fault-tolerant supervisor over those children: it
//! partitions the job list across `--shards` child processes, contains
//! crashes/panics/wedges/malformed output (retry with capped backoff,
//! bisect to the poison job, quarantine it as a structured failure row),
//! keeps a resumable write-ahead checkpoint, and merges deterministically.
//! Knobs: `ISS_SHARDS`, `ISS_SHARD_RETRIES`, `ISS_JOB_TIMEOUT_MS`, and
//! the test hook `ISS_FAULT_INJECT=<panic|exit|stall>:<job>`.
//! `validate` parses and expands specs without simulating anything — every
//! structural defect a run would hit (unknown keys, unknown benchmarks,
//! core-count mismatches, invalid configs) fails here, loudly.
//! `lint` goes further: static analysis of specs that *do* validate —
//! duplicate design points by canonical digest, dead sweep axes, machine
//! sanity, and a cost estimate against `ci/BENCH_baseline.json` (see the
//! `iss-lint` crate).
//! `serve` turns the engine into a long-running service: a TCP listener
//! speaking line-delimited JSON, a bounded simulation worker pool
//! (`--workers` / `ISS_SERVE_WORKERS`), and a persistent digest-keyed
//! result cache (`--cache-dir` / `ISS_CACHE_DIR`, bounded by
//! `--cache-max-mb` / `ISS_CACHE_MAX_MB`, cleared by `--evict`) so a
//! repeated design point answers from disk instead of simulating. It
//! prints the bound address (`--addr 127.0.0.1:0` picks a free port) and
//! runs until a client sends `{"cmd": "shutdown"}`.
//! `list` names the built-in sweeps and any `.toml` files in a directory
//! (default `examples/scenarios`).
//! `export` writes a built-in sweep as a scenario file — the quickest way
//! to start a new scenario: export the nearest figure, then edit knobs.
//!
//! The instruction budget of built-in sweeps follows
//! `ISS_EXPERIMENT_SCALE`; files carry their own budgets.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use iss_bench::scenarios::{builtin_sweep, is_wall_clock_frontier, BUILTINS};
use iss_sim::env::{
    try_configured_threads, try_job_timeout_from_env, try_retries_from_env, try_scale_from_env,
    try_shards_from_env,
};
use iss_sim::experiments::ExperimentScale;
use iss_sim::report;
use iss_sim::scenario::{render_records_json, render_records_jsonl};
use iss_sim::shard::{run_shard_jobs, run_sharded_sweep, shard_job_indices, ShardOptions};
use iss_sim::SweepSpec;

const DEFAULT_SCENARIO_DIR: &str = "examples/scenarios";

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  iss run <spec.toml | builtin> [--threads N] [--reference VARIANT] \
         [--json PATH] [--shard K/N | --jobs I,J,...]\n  iss sweep <spec.toml | builtin> \
         [--shards N] [--checkpoint PATH] [--resume] [--json PATH] [--jsonl PATH]\n  \
         iss serve [--addr HOST:PORT] [--workers N] [--cache-dir DIR] \
         [--cache-max-mb N] [--evict]\n  \
         iss validate <spec.toml | directory>...\n  iss lint <spec.toml | \
         directory>...\n  iss list [directory]\n  iss export <builtin> [path]\n  \
         iss export <spec.toml | builtin> --jsonl [path]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("sweep") => sweep(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("validate") => validate(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("list") => list(&args[1..]),
        Some("export") => export(&args[1..]),
        _ => usage(),
    }
}

/// Reads `ISS_EXPERIMENT_SCALE` through the typed-error path so a typo is
/// a clean CLI diagnostic instead of a panic.
fn cli_scale(command: &str) -> Result<ExperimentScale, ExitCode> {
    try_scale_from_env().map_err(|e| {
        eprintln!("iss {command}: {e}");
        ExitCode::FAILURE
    })
}

fn export(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    // `--jsonl` switches export from "emit the spec as TOML" to "run the
    // sweep and emit its records as line-delimited JSON" — one `Record`
    // object per line, quarantine rows included.
    if args.iter().any(|a| a == "--jsonl") {
        return export_jsonl(name, args.iter().skip(1).find(|a| *a != "--jsonl"));
    }
    let scale = match cli_scale("export") {
        Ok(scale) => scale,
        Err(code) => return code,
    };
    let Some(sweep) = builtin_sweep(name, scale) else {
        eprintln!("iss export: `{name}` is not a built-in sweep (see `iss list`)");
        return ExitCode::FAILURE;
    };
    let text = sweep.to_toml();
    match args.get(1) {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("iss export: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// `iss export <target> --jsonl [path]`: runs the sweep and writes the
/// JSONL columnar record stream to `path` (or stdout).
fn export_jsonl(target: &str, path: Option<&String>) -> ExitCode {
    let result = load(target)
        .and_then(|sweep| {
            let threads = try_configured_threads()?;
            sweep.run_with_threads(threads)
        })
        .map(|records| render_records_jsonl(&records));
    let text = match result {
        Ok(text) => text,
        Err(e) => {
            eprintln!("iss export: {e}");
            return ExitCode::FAILURE;
        }
    };
    match path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("iss export: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// Loads a sweep from a file path or a built-in name.
fn load(target: &str) -> Result<SweepSpec, String> {
    let path = Path::new(target);
    if path.exists() {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        return SweepSpec::from_toml(&text).map_err(|e| format!("{}: {e}", path.display()));
    }
    match builtin_sweep(target, try_scale_from_env()?) {
        Some(sweep) => Ok(sweep),
        None => Err(format!(
            "`{target}` is neither a readable spec file nor a built-in sweep \
             (see `iss list`)"
        )),
    }
}

/// Parses a `--shard K/N` operand.
fn parse_shard_of(value: &str) -> Result<(usize, usize), String> {
    let err = || format!("--shard needs the form K/N (e.g. 0/4), got `{value}`");
    let (k, n) = value.split_once('/').ok_or_else(err)?;
    let k = k.trim().parse::<usize>().map_err(|_| err())?;
    let n = n.trim().parse::<usize>().map_err(|_| err())?;
    Ok((k, n))
}

/// Parses a `--jobs I,J,...` operand.
fn parse_job_list(value: &str) -> Result<Vec<usize>, String> {
    value
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .map_err(|_| format!("--jobs needs comma-separated job indices, got `{value}`"))
        })
        .collect()
}

fn run(args: &[String]) -> ExitCode {
    let mut target = None;
    let mut threads = None;
    let mut reference = None;
    let mut json_path: Option<PathBuf> = None;
    let mut shard_of: Option<(usize, usize)> = None;
    let mut job_list: Option<Vec<usize>> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => threads = Some(n),
                _ => {
                    eprintln!("iss run: --threads needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--reference" => match it.next() {
                Some(v) => reference = Some(v.clone()),
                None => {
                    eprintln!("iss run: --reference needs a variant name");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => match it.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("iss run: --json needs an output path");
                    return ExitCode::FAILURE;
                }
            },
            "--shard" => match it.next().map(|v| parse_shard_of(v)) {
                Some(Ok(pair)) => shard_of = Some(pair),
                Some(Err(e)) => {
                    eprintln!("iss run: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("iss run: --shard needs a K/N operand");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match it.next().map(|v| parse_job_list(v)) {
                Some(Ok(list)) => job_list = Some(list),
                Some(Err(e)) => {
                    eprintln!("iss run: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("iss run: --jobs needs a comma-separated index list");
                    return ExitCode::FAILURE;
                }
            },
            other if !other.starts_with("--") && target.is_none() => {
                target = Some(other.to_string());
            }
            other => {
                eprintln!("iss run: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(target) = target else {
        return usage();
    };
    if shard_of.is_some() && job_list.is_some() {
        eprintln!("iss run: --shard and --jobs are mutually exclusive");
        return ExitCode::FAILURE;
    }
    let sweep = match load(&target) {
        Ok(sweep) => sweep,
        Err(e) => {
            eprintln!("iss run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let points = match sweep.expand() {
        Ok(points) => points,
        Err(e) => {
            eprintln!("iss run: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Child mode of a sharded sweep: run the selected jobs serially and
    // stream one Record JSON line per job — no tables, no summaries.
    if shard_of.is_some() || job_list.is_some() {
        let indices = match shard_of {
            Some((k, n)) => match shard_job_indices(points.len(), k, n) {
                Ok(indices) => indices,
                Err(e) => {
                    eprintln!("iss run: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => job_list.unwrap_or_default(),
        };
        let mut stdout = std::io::stdout().lock();
        return match run_shard_jobs(&sweep, &indices, &mut stdout) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("iss run: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // A sweep whose rows compare host wall-clocks (the hybrid/sampling
    // frontiers by name, or any sweep mixing hybrid/sampled variants with
    // references) runs on one worker by default: concurrent jobs
    // time-slicing against each other would contaminate exactly the
    // speedup columns such sweeps exist to report. `--threads` overrides.
    let frontier = is_wall_clock_frontier(&sweep.name)
        || points.iter().any(|p| {
            matches!(
                p.model,
                iss_sim::CoreModel::Hybrid(_) | iss_sim::CoreModel::Sampled(_)
            )
        });
    let threads = match threads {
        Some(n) => n,
        None if frontier => 1,
        None => match try_configured_threads() {
            Ok(n) => n,
            Err(e) => {
                eprintln!("iss run: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    println!(
        "running `{}`: {} scenario(s) on {} worker(s)\n",
        sweep.name,
        points.len(),
        threads
    );
    let records = match sweep.run_with_threads(threads) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("iss run: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report::format_records_table(&sweep.name, &records));
    let reference = reference.or_else(|| {
        records
            .iter()
            .any(|r| r.variant == "detailed")
            .then(|| "detailed".to_string())
    });
    if let Some(reference) = reference {
        println!();
        print!(
            "{}",
            report::format_comparison_table(&sweep.name, &records, &reference)
        );
    }
    if let Some(path) = json_path {
        let json = render_records_json(&records);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("iss run: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("\nwrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// `iss serve`: simulation as a service. Binds the listener, prints the
/// bound address (the line harnesses parse to find the port), and serves
/// until a client sends `{"cmd": "shutdown"}` — then exits 0. Flags beat
/// the `ISS_SERVE_WORKERS` / `ISS_CACHE_DIR` / `ISS_CACHE_MAX_MB`
/// environment knobs, which beat the defaults.
fn serve(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:0".to_string();
    let mut workers: Option<usize> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut cache_max_mb: Option<u64> = None;
    let mut evict = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => {
                    eprintln!("iss serve: --addr needs a HOST:PORT operand");
                    return ExitCode::FAILURE;
                }
            },
            "--workers" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => workers = Some(n),
                _ => {
                    eprintln!("iss serve: --workers needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--cache-dir" => match it.next() {
                Some(v) => cache_dir = Some(PathBuf::from(v)),
                None => {
                    eprintln!("iss serve: --cache-dir needs a directory path");
                    return ExitCode::FAILURE;
                }
            },
            "--cache-max-mb" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 && n.checked_mul(1024 * 1024).is_some() => {
                    cache_max_mb = Some(n);
                }
                _ => {
                    eprintln!("iss serve: --cache-max-mb needs a positive integer of MiB");
                    return ExitCode::FAILURE;
                }
            },
            "--evict" => evict = true,
            other => {
                eprintln!("iss serve: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let options = match iss_sim::ServeOptions::from_env() {
        Ok(mut options) => {
            if let Some(n) = workers {
                options.workers = n;
            }
            if let Some(dir) = cache_dir {
                options.cache_dir = dir;
            }
            if let Some(mb) = cache_max_mb {
                options.cache_max_bytes = Some(mb * 1024 * 1024);
            }
            options.evict_on_start = evict;
            options
        }
        Err(e) => {
            eprintln!("iss serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match iss_sim::Server::bind(&addr, &options) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("iss serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = match server.local_addr() {
        Ok(bound) => bound,
        Err(e) => {
            eprintln!("iss serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound_mb = options
        .cache_max_bytes
        .map_or("unbounded".to_string(), |b| {
            format!("{} MiB", b / (1024 * 1024))
        });
    println!("iss serve: listening on {bound}");
    println!(
        "iss serve: {} worker(s), cache at {} ({bound_mb})",
        options.workers,
        options.cache_dir.display()
    );
    match server.serve() {
        Ok(()) => {
            println!("iss serve: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("iss serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The fault-tolerant sharded supervisor: partitions the sweep's job list
/// across child `iss run --jobs ...` processes, contains child deaths, and
/// merges deterministically. Exits 0 even when jobs were quarantined — the
/// quarantine rows *are* the report; only spec/infrastructure defects fail.
fn sweep(args: &[String]) -> ExitCode {
    let mut target = None;
    let mut shards: Option<usize> = None;
    let mut checkpoint: Option<PathBuf> = None;
    let mut resume = false;
    let mut json_path: Option<PathBuf> = None;
    let mut jsonl_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shards" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => shards = Some(n),
                _ => {
                    eprintln!("iss sweep: --shards needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--checkpoint" => match it.next() {
                Some(v) => checkpoint = Some(PathBuf::from(v)),
                None => {
                    eprintln!("iss sweep: --checkpoint needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--resume" => resume = true,
            "--json" => match it.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("iss sweep: --json needs an output path");
                    return ExitCode::FAILURE;
                }
            },
            "--jsonl" => match it.next() {
                Some(v) => jsonl_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("iss sweep: --jsonl needs an output path");
                    return ExitCode::FAILURE;
                }
            },
            other if !other.starts_with("--") && target.is_none() => {
                target = Some(other.to_string());
            }
            other => {
                eprintln!("iss sweep: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(target) = target else {
        return usage();
    };
    let sweep = match load(&target) {
        Ok(sweep) => sweep,
        Err(e) => {
            eprintln!("iss sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let points = match sweep.expand() {
        Ok(points) => points,
        Err(e) => {
            eprintln!("iss sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Flag > environment > host parallelism, all strictly parsed.
    let mut options = match (|| -> Result<ShardOptions, String> {
        let shards = match shards {
            Some(n) => n,
            None => try_shards_from_env()?,
        };
        let mut options = ShardOptions::new(shards.min(points.len().max(1)));
        options.retries = try_retries_from_env()?;
        options.job_timeout_ms = try_job_timeout_from_env()?;
        Ok(options)
    })() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("iss sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    options.checkpoint =
        Some(checkpoint.unwrap_or_else(|| PathBuf::from(format!("iss-sweep-{}.ckpt", sweep.name))));
    options.resume = resume;
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("iss sweep: cannot locate my own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "sharded sweep `{}`: {} job(s) across {} shard(s)",
        sweep.name,
        points.len(),
        options.shards
    );
    let mut launcher = |task: &iss_sim::ShardTask| {
        let list: Vec<String> = task.jobs.iter().map(usize::to_string).collect();
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("run")
            .arg(&target)
            .arg("--jobs")
            .arg(list.join(","));
        cmd
    };
    let outcome = match run_sharded_sweep(&sweep, &options, &mut launcher) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("iss sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!();
    print!(
        "{}",
        report::format_records_table(&sweep.name, &outcome.records)
    );
    if let Some(path) = jsonl_path {
        if let Err(e) = std::fs::write(&path, render_records_jsonl(&outcome.records)) {
            eprintln!("iss sweep: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("\nwrote {}", path.display());
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, render_records_json(&outcome.records)) {
            eprintln!("iss sweep: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("\nwrote {}", path.display());
    }
    println!(
        "\nsweep complete: {} record(s), {} quarantined, {} resumed from checkpoint, \
         {} child dispatch(es)",
        outcome.records.len(),
        outcome.quarantined,
        outcome.resumed,
        outcome.dispatches
    );
    ExitCode::SUCCESS
}

/// Spec files in a directory, sorted for deterministic output.
fn spec_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
        .collect();
    files.sort();
    files
}

fn validate(args: &[String]) -> ExitCode {
    if args.is_empty() {
        return usage();
    }
    let mut targets = Vec::new();
    for a in args {
        let path = Path::new(a);
        if path.is_dir() {
            let found = spec_files(path);
            if found.is_empty() {
                eprintln!("iss validate: no .toml files in {}", path.display());
                return ExitCode::FAILURE;
            }
            targets.extend(found);
        } else {
            targets.push(path.to_path_buf());
        }
    }
    let mut failures = 0;
    for path in &targets {
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read: {e}"))
            .and_then(|text| SweepSpec::from_toml(&text).map_err(|e| e.to_string()))
            .and_then(|sweep| sweep.expand().map(|points| (sweep, points)));
        match outcome {
            Ok((sweep, points)) => {
                println!(
                    "{}: OK (`{}`, {} scenario(s))",
                    path.display(),
                    sweep.name,
                    points.len()
                );
                // Validation accepts duplicate design points (they simulate
                // fine, just redundantly); nudge toward the deeper check.
                let mut digests = std::collections::BTreeSet::new();
                if points
                    .iter()
                    .filter_map(|p| p.digest().ok())
                    .any(|d| !digests.insert(d))
                {
                    println!(
                        "  note: expands to duplicate design points — run \
                         `iss lint {}` for details",
                        path.display()
                    );
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("{}: FAIL — {e}", path.display());
            }
        }
    }
    if failures == 0 {
        println!("{} spec file(s) valid", targets.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} of {} spec file(s) invalid", targets.len());
        ExitCode::FAILURE
    }
}

fn lint(args: &[String]) -> ExitCode {
    if args.is_empty() {
        return usage();
    }
    let mut targets = Vec::new();
    for a in args {
        let path = Path::new(a);
        if path.is_dir() {
            let found = spec_files(path);
            if found.is_empty() {
                eprintln!("iss lint: no .toml files in {}", path.display());
                return ExitCode::FAILURE;
            }
            targets.extend(found);
        } else {
            targets.push(path.to_path_buf());
        }
    }
    // The cost estimate needs the perf baseline; without one the lint
    // still runs, it just reports instructions instead of seconds.
    let mips = std::fs::read_to_string("ci/BENCH_baseline.json")
        .ok()
        .and_then(|text| iss_lint::ModelMips::parse(&text).ok());
    let mut errors = 0usize;
    for path in &targets {
        let report = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read: {e}"))
            .and_then(|text| SweepSpec::from_toml(&text))
            .and_then(|sweep| iss_lint::analyze(&sweep, mips.as_ref()));
        match report {
            Ok(report) => {
                let cost = report.estimated_seconds.map_or(String::new(), |s| {
                    format!(", est {s:.2}s at baseline throughput")
                });
                println!(
                    "{}: `{}` expands to {} point(s), {} instructions{cost}",
                    path.display(),
                    report.name,
                    report.points,
                    report.instructions
                );
                for f in &report.findings {
                    match f.severity {
                        iss_lint::Severity::Error => {
                            errors += 1;
                            println!("  error: {}", f.message);
                        }
                        iss_lint::Severity::Warning => println!("  warning: {}", f.message),
                    }
                }
            }
            Err(e) => {
                errors += 1;
                eprintln!("{}: FAIL — {e}", path.display());
            }
        }
    }
    if errors == 0 {
        println!("{} spec file(s) lint clean", targets.len());
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{errors} lint error(s) across {} spec file(s)",
            targets.len()
        );
        ExitCode::FAILURE
    }
}

fn list(args: &[String]) -> ExitCode {
    println!("built-in sweeps (run with `iss run <name>`):");
    for (name, description) in BUILTINS {
        println!("  {name:<14} {description}");
    }
    let dir = args
        .first()
        .map_or_else(|| PathBuf::from(DEFAULT_SCENARIO_DIR), PathBuf::from);
    let files = spec_files(&dir);
    if files.is_empty() {
        println!("\nno scenario files found under {}", dir.display());
    } else {
        println!("\nscenario files under {}:", dir.display());
        for f in files {
            println!("  {}", f.display());
        }
    }
    ExitCode::SUCCESS
}
