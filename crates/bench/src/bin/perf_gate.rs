//! CI perf-regression gate.
//!
//! Compares a fresh `perf` run (`BENCH_interval.json`) against the committed
//! baseline `ci/BENCH_baseline.json` and fails when any model's simulated
//! MIPS regresses by more than the allowed fraction (default 25% — host
//! machines differ, real hot-loop regressions are bigger than that).
//!
//! When both files carry a `reference_kernel_mops` entry (the throughput of
//! the same fixed integer kernel on each run's host), the comparison is
//! *normalized*: each MIPS number is divided by its run's kernel speed, so
//! a uniformly slow or loaded host cancels out and the margin gates
//! simulator regressions rather than host noise. Baselines written before
//! the kernel existed fall back to the raw comparison.
//!
//! The same margin also gates the isolated lane kernels (`kernels` rows:
//! tag compare, TLB batch, threshold scan, branch update) as
//! host-normalized per-kernel floors, so a vectorized kernel cannot rot
//! back to scalar speed while the end-to-end MIPS hides it. Baselines
//! without kernel rows skip those floors until refreshed; a baseline with
//! rows against a fresh run without them fails loudly.
//!
//! Usage:
//!   perf_gate \[baseline\] \[fresh\] \[--max-regression-pct N\]
//!
//! Defaults: baseline `ci/BENCH_baseline.json`, fresh `BENCH_interval.json`.

use std::process::ExitCode;

use iss_bench::gates::{
    diff_kernels, diff_perf, parse_perf_kernels, parse_perf_models, parse_reference_kernel,
};

const DEFAULT_BASELINE: &str = "ci/BENCH_baseline.json";
const DEFAULT_FRESH: &str = "BENCH_interval.json";

type PerfFile = (
    Vec<iss_bench::gates::ModelMips>,
    Vec<iss_bench::gates::KernelMops>,
    Option<f64>,
);

fn read_models(path: &str) -> Result<PerfFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let models = parse_perf_models(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    Ok((
        models,
        parse_perf_kernels(&text),
        parse_reference_kernel(&text),
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_regression = 0.25;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--max-regression-pct" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct > 0.0 && pct < 100.0 => max_regression = pct / 100.0,
                _ => {
                    eprintln!("perf gate: --max-regression-pct needs a value in (0, 100)");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            paths.push(a.clone());
        }
    }
    let baseline_path = paths.first().map_or(DEFAULT_BASELINE, String::as_str);
    let fresh_path = paths.get(1).map_or(DEFAULT_FRESH, String::as_str);

    let ((baseline, baseline_kernels, baseline_ref), (fresh, fresh_kernels, fresh_ref)) =
        match (read_models(baseline_path), read_models(fresh_path)) {
            (Ok(b), Ok(f)) => (b, f),
            (b, f) => {
                for r in [b.err(), f.err()].into_iter().flatten() {
                    eprintln!("perf gate: {r}");
                }
                return ExitCode::FAILURE;
            }
        };
    println!(
        "perf gate: {} baseline model(s) from {baseline_path}, fresh run {fresh_path}, \
         max regression {:.0}%",
        baseline.len(),
        max_regression * 100.0
    );
    match (baseline_ref, fresh_ref) {
        (Some(b), Some(f)) => println!(
            "  reference kernel: baseline {b:.0} MOPS, fresh {f:.0} MOPS — comparing \
             host-normalized MIPS"
        ),
        _ => println!("  no reference kernel in both files — comparing raw MIPS"),
    }
    for f in &fresh {
        let base = baseline
            .iter()
            .find(|b| b.model == f.model)
            .map_or(f64::NAN, |b| b.simulated_mips);
        println!(
            "  {:<10} fresh {:>8.2} MIPS   baseline {:>8.2} MIPS",
            f.model, f.simulated_mips, base
        );
    }
    if baseline_kernels.is_empty() {
        println!("  no kernel floors in the baseline — refresh it to start pinning them");
    }
    for f in &fresh_kernels {
        let base = baseline_kernels
            .iter()
            .find(|b| b.kernel == f.kernel)
            .map_or(f64::NAN, |b| b.mops);
        println!(
            "  kernel {:<20} fresh {:>8.1} MOPS   baseline {:>8.1} MOPS",
            f.kernel, f.mops, base
        );
    }
    let mut violations = diff_perf(&baseline, &fresh, baseline_ref, fresh_ref, max_regression);
    violations.extend(diff_kernels(
        &baseline_kernels,
        &fresh_kernels,
        baseline_ref,
        fresh_ref,
        max_regression,
    ));
    if violations.is_empty() {
        println!("perf gate: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("perf gate: FAIL — {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        eprintln!("if the slowdown is intended, refresh the baseline:");
        eprintln!("  cargo run --release -p iss-bench --bin perf -- {DEFAULT_BASELINE}");
        ExitCode::FAILURE
    }
}
