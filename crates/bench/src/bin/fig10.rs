//! Shim over the generic scenario engine for Figure 10 (simulation
//! speedup, PARSEC). Equivalent to `iss run fig10`.

use iss_bench::{CORE_COUNTS, PARSEC_QUICK};
use iss_sim::env::scale_from_env;
use iss_sim::experiments::fig10;
use iss_sim::report::format_comparison_table;
use iss_trace::catalog::PARSEC;

fn main() {
    let all = std::env::args().any(|a| a == "--all-benchmarks");
    let benchmarks: Vec<&str> = if all {
        PARSEC.to_vec()
    } else {
        PARSEC_QUICK.to_vec()
    };
    let records = fig10(&benchmarks, &CORE_COUNTS, scale_from_env());
    println!(
        "{}",
        format_comparison_table(
            "Figure 10 — simulation speedup over detailed simulation (PARSEC)",
            &records,
            "detailed"
        )
    );
}
