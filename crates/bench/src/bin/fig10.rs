//! Regenerates Figure 10: simulation speedup for PARSEC workloads.

use iss_bench::{scale_from_env, CORE_COUNTS, PARSEC_QUICK};
use iss_sim::experiments::fig10;
use iss_sim::report::format_speedup_table;
use iss_trace::catalog::PARSEC;

fn main() {
    let all = std::env::args().any(|a| a == "--all-benchmarks");
    let benchmarks: Vec<&str> = if all {
        PARSEC.to_vec()
    } else {
        PARSEC_QUICK.to_vec()
    };
    let rows = fig10(&benchmarks, &CORE_COUNTS, scale_from_env());
    println!("Figure 10 — simulation speedup over detailed simulation (PARSEC)");
    println!("{}", format_speedup_table(&rows));
}
