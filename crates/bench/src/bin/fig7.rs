//! Shim over the generic scenario engine for Figure 7 (PARSEC scaling).
//! Equivalent to `iss run fig7`.

use iss_bench::{CORE_COUNTS, PARSEC_QUICK};
use iss_sim::env::scale_from_env;
use iss_sim::experiments::fig7;
use iss_sim::report::format_normalized_table;
use iss_trace::catalog::PARSEC;

fn main() {
    let all = std::env::args().any(|a| a == "--all-benchmarks");
    let benchmarks: Vec<&str> = if all {
        PARSEC.to_vec()
    } else {
        PARSEC_QUICK.to_vec()
    };
    let records = fig7(&benchmarks, &CORE_COUNTS, scale_from_env());
    println!(
        "{}",
        format_normalized_table(
            "Figure 7 — multi-threaded PARSEC workloads",
            &records,
            "detailed"
        )
    );
}
