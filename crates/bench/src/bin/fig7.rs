//! Regenerates Figure 7: PARSEC normalized execution time vs core count.

use iss_bench::{scale_from_env, CORE_COUNTS, PARSEC_QUICK};
use iss_sim::experiments::fig7;
use iss_sim::report::format_fig7_table;
use iss_trace::catalog::PARSEC;

fn main() {
    let all = std::env::args().any(|a| a == "--all-benchmarks");
    let benchmarks: Vec<&str> = if all {
        PARSEC.to_vec()
    } else {
        PARSEC_QUICK.to_vec()
    };
    let rows = fig7(&benchmarks, &CORE_COUNTS, scale_from_env());
    println!("Figure 7 — multi-threaded PARSEC workloads (normalized execution time)");
    println!("{}", format_fig7_table(&rows));
}
