//! Regenerates Figure 8: the 3D-stacking design trade-off case study.

use iss_bench::{scale_from_env, PARSEC_QUICK};
use iss_sim::experiments::fig8;
use iss_sim::report::format_fig8_table;
use iss_trace::catalog::PARSEC;

fn main() {
    let all = std::env::args().any(|a| a == "--all-benchmarks");
    let benchmarks: Vec<&str> = if all {
        PARSEC.to_vec()
    } else {
        PARSEC_QUICK.to_vec()
    };
    let rows = fig8(&benchmarks, scale_from_env());
    println!("Figure 8 — 2 cores + L2 + external DRAM vs 4 cores + 3D-stacked DRAM");
    println!("{}", format_fig8_table(&rows));
}
