//! Shim over the generic scenario engine for Figure 8 (the 3D-stacking
//! design trade-off). Equivalent to `iss run fig8`.

use iss_bench::PARSEC_QUICK;
use iss_sim::env::scale_from_env;
use iss_sim::experiments::fig8;
use iss_sim::report::format_normalized_table;
use iss_trace::catalog::PARSEC;

fn main() {
    let all = std::env::args().any(|a| a == "--all-benchmarks");
    let benchmarks: Vec<&str> = if all {
        PARSEC.to_vec()
    } else {
        PARSEC_QUICK.to_vec()
    };
    let records = fig8(&benchmarks, scale_from_env());
    // The first `...detailed` run per benchmark is the dual-core design
    // point — the paper's normalization reference.
    println!(
        "{}",
        format_normalized_table(
            "Figure 8 — 2 cores + L2 + external DRAM vs 4 cores + 3D-stacked DRAM",
            &records,
            "detailed"
        )
    );
}
