//! Machine-readable performance trajectory of the simulator itself.
//!
//! Runs a fixed instruction budget per core model (single-threaded, so the
//! number reported is the hot-loop speed, not the batch engine's), times the
//! figure drivers through the parallel batch engine, and emits
//! `BENCH_interval.json` with:
//!
//! * simulated MIPS per core model (single-thread),
//! * a `warming` row: functional-warming throughput of the batched
//!   structure-of-arrays path (`fast_forward_batched` +
//!   `warm_access_batch` + `update_batch`), the speed sampled simulation
//!   is Amdahl-bound on,
//! * the throughput of a tiny fixed reference kernel (pure integer work,
//!   no simulator code) — the perf gate divides every MIPS number by it so
//!   a slow or noisy host cancels out of the baseline comparison,
//! * a `kernels` array: the four isolated lane kernels of the hot loops
//!   (set-major tag compare, batched TLB translate, geometric threshold
//!   scan, batched branch update) in MOPS on harvested columns — the perf
//!   gate pins each as a host-normalized per-kernel floor,
//! * the interval-vs-detailed simulation speedup,
//! * wall-clock seconds per figure driver (these scale with `ISS_THREADS`).
//!
//! Every measurement runs through the generic scenario engine: each model's
//! throughput row is a one-model benchmark sweep executed on a single
//! worker, summed over its unified records.
//!
//! Usage: `perf [output-path] [--no-figures]`; the output path defaults to
//! `ISS_BENCH_OUT` or `BENCH_interval.json`. The instruction budget follows
//! `ISS_EXPERIMENT_SCALE` (`quick` by default).

use iss_sim::host_time::HostTimer;
use std::fmt::Write as _;

use iss_bench::{PARSEC_QUICK, SPEC_QUICK};
use iss_branch::BranchUnit;
use iss_mem::tlb::TlbConfig;
use iss_mem::{Cache, CacheConfig, LineState, MemoryHierarchy, Tlb};
use iss_sim::env::{configured_threads, scale_from_env};
use iss_sim::experiments::{self, default_sampling_specs, ExperimentScale, Fig4Variant};
use iss_sim::runner::CoreModel;
use iss_sim::scenario::{ScenarioSpec, SweepSpec};
use iss_sim::{SystemConfig, WorkloadSpec};
use iss_trace::{
    catalog, fast_forward_batched, geo_classify, geo_classify_head, geo_threshold_table,
    BranchInfo, CheckpointStream, CoreResume, InstBatch, GEO_U_MIN,
};

/// Single-thread throughput of one measured hot loop over the SPEC quick
/// set (a core model, or the batched functional-warming path).
struct ModelThroughput {
    name: String,
    instructions: u64,
    host_seconds: f64,
}

impl ModelThroughput {
    fn mips(&self) -> f64 {
        if self.host_seconds <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.host_seconds / 1e6
        }
    }
}

/// Timing repetitions per model; the fastest run is kept. Shared CI
/// runners have noisy neighbours, so a single sample can absorb a
/// scheduler stall and masquerade as a real regression — the minimum
/// over a few runs is a much more stable estimate of hot-loop speed.
const MEASUREMENT_RUNS: usize = 3;

fn measure_model(model: CoreModel, scale: ExperimentScale) -> ModelThroughput {
    let mut base = ScenarioSpec::new(
        WorkloadSpec::single(SPEC_QUICK[0], scale.spec_length),
        scale.seed,
    );
    base.model = model;
    let mut sweep = SweepSpec::new("perf", base);
    sweep.benchmarks = SPEC_QUICK.iter().map(|b| (*b).to_string()).collect();
    // One worker: this is the hot-loop MIPS figure, not batch scaling, and a
    // single worker keeps the per-run wall clocks free of host contention.
    let mut best: Option<ModelThroughput> = None;
    for _ in 0..MEASUREMENT_RUNS {
        let records = sweep
            .run_with_threads(1)
            .unwrap_or_else(|e| panic!("perf sweep failed: {e}"));
        let run = ModelThroughput {
            name: model.name(),
            instructions: records.iter().map(|r| r.instructions).sum(),
            host_seconds: records.iter().map(|r| r.host_seconds).sum(),
        };
        if best
            .as_ref()
            .is_none_or(|b| run.host_seconds < b.host_seconds)
        {
            best = Some(run);
        }
    }
    best.unwrap_or_else(|| panic!("perf measured no runs for {}", model.name()))
}

/// Fetch-batching grain of the warming path (64-byte i-cache lines) and the
/// default structure-of-arrays batch size — the same values the sampled
/// runner uses.
const IFETCH_LINE_SHIFT: u32 = 6;
const WARM_BATCH: usize = 64;

/// Throughput of the batched functional-warming path itself: every SPEC
/// quick benchmark is fast-forwarded front to back through
/// `fast_forward_batched`, warming the memory hierarchy and branch unit
/// exactly as a sampled run's functional units do, with no timing model
/// attached. This is the speed sampled simulation is Amdahl-bound on.
fn measure_warming(scale: ExperimentScale) -> ModelThroughput {
    let config = SystemConfig::hpca2010_baseline(1);
    let mut best: Option<ModelThroughput> = None;
    for _ in 0..MEASUREMENT_RUNS {
        let start = HostTimer::start();
        let mut instructions = 0u64;
        for benchmark in SPEC_QUICK {
            let workload = WorkloadSpec::single(benchmark, scale.spec_length)
                .build(scale.seed)
                .unwrap_or_else(|e| panic!("warming workload failed: {e}"));
            let num_cores = workload.num_cores();
            let (raw_streams, mut sync) = workload.into_parts();
            let mut streams: Vec<CheckpointStream> = raw_streams
                .into_iter()
                .map(CheckpointStream::fresh)
                .collect();
            let mut per_core = vec![
                CoreResume {
                    time: 0,
                    instructions: 0,
                    done: false,
                };
                num_cores
            ];
            let mut memory = MemoryHierarchy::new(&config.memory);
            memory.set_warming(true);
            let mut branch: Vec<BranchUnit> = (0..num_cores)
                .map(|_| BranchUnit::new(&config.branch))
                .collect();
            let mut batch = InstBatch::with_capacity(WARM_BATCH);
            let mut last_iline = vec![u64::MAX; num_cores];
            let mut now = 0u64;
            loop {
                let consumed = fast_forward_batched(
                    &mut streams,
                    &mut sync,
                    &mut per_core,
                    u64::MAX,
                    &mut batch,
                    &mut |core, b: &InstBatch| {
                        memory.warm_access_batch(
                            core,
                            &b.pc,
                            &b.mem_pos,
                            &b.mem_addr,
                            &b.mem_store,
                            IFETCH_LINE_SHIFT,
                            &mut last_iline[core],
                            now,
                        );
                        branch[core].update_batch(&b.br_pc, &b.br_info);
                        now += b.len() as u64;
                    },
                );
                instructions += consumed;
                if consumed == 0 {
                    break;
                }
            }
        }
        let run = ModelThroughput {
            name: "warming".to_string(),
            instructions,
            host_seconds: start.elapsed_seconds(),
        };
        if best
            .as_ref()
            .is_none_or(|b| run.host_seconds < b.host_seconds)
        {
            best = Some(run);
        }
    }
    best.unwrap_or_else(|| panic!("perf measured no warming runs"))
}

/// Throughput of one isolated batch kernel on harvested columns.
struct KernelThroughput {
    name: &'static str,
    ops: u64,
    host_seconds: f64,
}

impl KernelThroughput {
    fn mops(&self) -> f64 {
        if self.host_seconds <= 0.0 {
            0.0
        } else {
            self.ops as f64 / self.host_seconds / 1e6
        }
    }
}

/// Passes over the harvested columns per kernel timing run: enough work
/// (a few million kernel operations) that one scheduler hiccup cannot
/// dominate the measurement.
const KERNEL_PASSES: u64 = 32;

/// Measures the four lane kernels behind the warming and interval hot
/// loops in isolation, on the same realistic columns the `batch_kernels`
/// criterion group uses: one benchmark decoded front to back at the
/// warming batch size, its structure-of-arrays columns retained and
/// replayed against fresh kernel state. The JSON rows these produce are
/// what `perf_gate` pins as host-normalized per-kernel floors.
fn measure_kernels(scale: ExperimentScale) -> Vec<KernelThroughput> {
    // Harvest mcf's columns — the workload with the richest mix of memory
    // and branch traffic in the quick set.
    let config = SystemConfig::hpca2010_baseline(1);
    let workload = WorkloadSpec::single("mcf", scale.spec_length)
        .build(scale.seed)
        .unwrap_or_else(|e| panic!("kernel harvest workload failed: {e}"));
    let (raw, mut sync) = workload.into_parts();
    let mut streams: Vec<CheckpointStream> = raw.into_iter().map(CheckpointStream::fresh).collect();
    let mut per_core = vec![
        CoreResume {
            time: 0,
            instructions: 0,
            done: false,
        };
        streams.len()
    ];
    let mut batch = InstBatch::with_capacity(WARM_BATCH);
    let mut mem_addr: Vec<Vec<u64>> = Vec::new();
    let mut branches: Vec<(Vec<u64>, Vec<BranchInfo>)> = Vec::new();
    fast_forward_batched(
        &mut streams,
        &mut sync,
        &mut per_core,
        u64::MAX,
        &mut batch,
        &mut |_, b: &InstBatch| {
            mem_addr.push(b.mem_addr.clone());
            branches.push((b.br_pc.clone(), b.br_info.clone()));
        },
    );
    let accesses: u64 = mem_addr.iter().map(|c| c.len() as u64).sum();
    let branch_ops: u64 = branches.iter().map(|(p, _)| p.len() as u64).sum();

    // Best-of-N timing of `passes` replays of one closure.
    let time_kernel = |name: &'static str, ops: u64, run: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..MEASUREMENT_RUNS {
            let start = HostTimer::start();
            for _ in 0..KERNEL_PASSES {
                run();
            }
            best = best.min(start.elapsed_seconds());
        }
        KernelThroughput {
            name,
            ops: ops * KERNEL_PASSES,
            host_seconds: best,
        }
    };

    let mut kernels = Vec::new();

    // Set-major tag compare: the widest cache in the hierarchy (the L2),
    // pre-populated so the timed loop is pure lookups.
    let mut l2 = Cache::new(&CacheConfig::l2_4m());
    for col in &mem_addr {
        for &a in col {
            l2.insert(a, LineState::Exclusive);
        }
    }
    let mut states = Vec::new();
    kernels.push(time_kernel("tag_compare", accesses, &mut || {
        for col in &mem_addr {
            l2.access_batch(col, &mut states);
            std::hint::black_box(states.len());
        }
    }));

    // Batched TLB translate over the same address columns.
    let mut tlb = Tlb::new(&TlbConfig::default_dtlb());
    let mut latencies = Vec::new();
    kernels.push(time_kernel("tlb_access_batch", accesses, &mut || {
        for col in &mem_addr {
            tlb.access_batch(col, &mut latencies);
            std::hint::black_box(latencies.len());
        }
    }));

    // The generator's geometric dependence-distance classify, on clamped
    // uniforms like `SyntheticStream::pick_src` draws.
    const DRAWS: usize = 1 << 16;
    let profile = catalog::spec_profile("mcf").unwrap_or_else(|| panic!("mcf is in the catalog"));
    let table = geo_threshold_table(profile.dep_distance_mean);
    let head = geo_classify_head(profile.dep_distance_mean);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let draws: Vec<f64> = (0..DRAWS)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
            ((bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)).max(GEO_U_MIN)
        })
        .collect();
    kernels.push(time_kernel("threshold_scan", DRAWS as u64, &mut || {
        let mut acc = 0usize;
        for &u in &draws {
            acc += geo_classify(&table, head, u);
        }
        std::hint::black_box(acc);
    }));

    // Batched branch-unit update over the harvested branch columns.
    let config_branch = config.branch;
    let mut unit = BranchUnit::new(&config_branch);
    kernels.push(time_kernel("branch_update_batch", branch_ops, &mut || {
        for (pcs, infos) in &branches {
            unit.update_batch(pcs, infos);
        }
    }));

    kernels
}

/// Iterations of the fixed reference kernel — sized for tens of
/// milliseconds per run, long enough to average over scheduler jitter.
const REFERENCE_ITERS: u64 = 1 << 26;

/// Throughput (million operations per second) of a tiny fixed integer
/// kernel that exercises no simulator code: an xorshift64* chain whose
/// result feeds `black_box` so it cannot be folded away. The kernel is
/// pinned — the same operations forever — so its speed varies only with
/// the host; the perf gate divides every simulated-MIPS number by it to
/// cancel host speed and load out of the baseline comparison.
fn measure_reference_kernel() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..MEASUREMENT_RUNS {
        let start = HostTimer::start();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..REFERENCE_ITERS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        std::hint::black_box(x);
        best = best.min(start.elapsed_seconds());
    }
    if best <= 0.0 {
        return 0.0;
    }
    REFERENCE_ITERS as f64 / best / 1e6
}

/// Wall-clock of one figure driver (runs through `run_batch`, so this is the
/// number that drops when `ISS_THREADS` rises).
struct DriverTiming {
    name: &'static str,
    seconds: f64,
    rows: usize,
}

fn time_driver(name: &'static str, f: impl FnOnce() -> usize) -> DriverTiming {
    let start = HostTimer::start();
    let rows = f();
    DriverTiming {
        name,
        seconds: start.elapsed_seconds(),
        rows,
    }
}

fn time_drivers(scale: ExperimentScale) -> Vec<DriverTiming> {
    let spec2 = &SPEC_QUICK[..2];
    let parsec2 = &PARSEC_QUICK[..2];
    vec![
        time_driver("fig4", || {
            experiments::fig4(Fig4Variant::EffectiveDispatchRate, &SPEC_QUICK, scale).len()
        }),
        time_driver("fig5", || experiments::fig5(&SPEC_QUICK, scale).len()),
        time_driver("fig6", || experiments::fig6(spec2, &[1, 2, 4], scale).len()),
        time_driver("fig7", || {
            experiments::fig7(parsec2, &[1, 2, 4], scale).len()
        }),
        time_driver("fig8", || experiments::fig8(parsec2, scale).len()),
        time_driver("fig9", || experiments::fig9(spec2, &[1, 4], scale).len()),
        time_driver("fig10", || {
            experiments::fig10(parsec2, &[1, 4], scale).len()
        }),
        time_driver("ablation", || {
            experiments::ablation(&SPEC_QUICK, scale).len()
        }),
        time_driver("fig_sampling", || {
            experiments::fig_sampling(spec2, &default_sampling_specs(scale), scale).len()
        }),
    ]
}

fn render_json(
    scale: ExperimentScale,
    threads: usize,
    reference_mops: f64,
    models: &[ModelThroughput],
    kernels: &[KernelThroughput],
    speedup: f64,
    drivers: &[DriverTiming],
) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"schema\": \"iss-bench-perf/v1\",");
    let _ = writeln!(
        j,
        "  \"scale\": {{\"spec_length\": {}, \"parsec_length\": {}, \"seed\": {}}},",
        scale.spec_length, scale.parsec_length, scale.seed
    );
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"reference_kernel_mops\": {reference_mops:.3},");
    j.push_str("  \"models\": [\n");
    for (i, m) in models.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"model\": \"{}\", \"instructions\": {}, \"host_seconds\": {:.6}, \"simulated_mips\": {:.3}}}{}",
            m.name,
            m.instructions,
            m.host_seconds,
            m.mips(),
            if i + 1 < models.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"ops\": {}, \"host_seconds\": {:.6}, \"mops\": {:.3}}}{}",
            k.name,
            k.ops,
            k.host_seconds,
            k.mops(),
            if i + 1 < kernels.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(j, "  \"interval_over_detailed_speedup\": {speedup:.3},");
    j.push_str("  \"drivers\": [\n");
    for (i, d) in drivers.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"name\": \"{}\", \"seconds\": {:.6}, \"rows\": {}}}{}",
            d.name,
            d.seconds,
            d.rows,
            if i + 1 < drivers.len() { "," } else { "" }
        );
    }
    j.push_str("  ]\n}\n");
    j
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let no_figures = args.iter().any(|a| a == "--no-figures");
    let out_path = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .cloned()
        .or_else(|| std::env::var("ISS_BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_interval.json".to_string());

    let scale = scale_from_env();
    let threads = configured_threads();

    println!(
        "perf — simulator throughput (spec budget {} instructions/benchmark)",
        scale.spec_length
    );
    // The sampled model's MIPS row uses the acceptance-point spec of the
    // default sweep, so the perf gate pins the configuration the sampling
    // figure headlines.
    let sampled = CoreModel::Sampled(default_sampling_specs(scale)[0]);
    let mut models: Vec<ModelThroughput> = [
        CoreModel::Interval,
        CoreModel::Detailed,
        CoreModel::OneIpc,
        sampled,
    ]
    .into_iter()
    .map(|m| measure_model(m, scale))
    .collect();
    models.push(measure_warming(scale));
    let kernels = measure_kernels(scale);
    let reference_mops = measure_reference_kernel();
    for m in &models {
        println!(
            "{:<10} {:>12} instructions {:>10.3}s {:>10.2} simulated MIPS",
            m.name,
            m.instructions,
            m.host_seconds,
            m.mips()
        );
    }
    for k in &kernels {
        println!(
            "kernel {:<20} {:>12} ops {:>10.3}s {:>10.1} MOPS",
            k.name,
            k.ops,
            k.host_seconds,
            k.mops()
        );
    }
    println!("reference kernel: {reference_mops:.0} MOPS (host speed normalizer)");
    let interval = models
        .iter()
        .find(|m| m.name == "interval")
        .expect("interval model measured");
    let detailed = models
        .iter()
        .find(|m| m.name == "detailed")
        .expect("detailed model measured");
    let speedup = if interval.host_seconds > 0.0 {
        detailed.host_seconds / interval.host_seconds
    } else {
        0.0
    };
    println!("interval over detailed speedup: {speedup:.1}x");

    let drivers = if no_figures {
        Vec::new()
    } else {
        println!("timing figure drivers with {threads} worker thread(s)...");
        let drivers = time_drivers(scale);
        for d in &drivers {
            println!("{:<10} {:>10.3}s {:>5} rows", d.name, d.seconds, d.rows);
        }
        drivers
    };

    let json = render_json(
        scale,
        threads,
        reference_mops,
        &models,
        &kernels,
        speedup,
        &drivers,
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");
}
