//! Shim over the generic scenario engine for Figure 9 (simulation speedup,
//! SPEC multi-program). Equivalent to `iss run fig9`.

use iss_bench::{CORE_COUNTS, SPEC_QUICK};
use iss_sim::env::scale_from_env;
use iss_sim::experiments::fig9;
use iss_sim::report::format_comparison_table;
use iss_trace::catalog::SPEC_CPU2000;

fn main() {
    let all = std::env::args().any(|a| a == "--all-benchmarks");
    let benchmarks: Vec<&str> = if all {
        SPEC_CPU2000.to_vec()
    } else {
        SPEC_QUICK.to_vec()
    };
    let records = fig9(&benchmarks, &CORE_COUNTS, scale_from_env());
    println!(
        "{}",
        format_comparison_table(
            "Figure 9 — simulation speedup over detailed simulation (SPEC multi-program)",
            &records,
            "detailed"
        )
    );
}
