//! Regenerates Figure 9: simulation speedup for SPEC multi-program workloads.

use iss_bench::{scale_from_env, CORE_COUNTS, SPEC_QUICK};
use iss_sim::experiments::fig9;
use iss_sim::report::format_speedup_table;
use iss_trace::catalog::SPEC_CPU2000;

fn main() {
    let all = std::env::args().any(|a| a == "--all-benchmarks");
    let benchmarks: Vec<&str> = if all {
        SPEC_CPU2000.to_vec()
    } else {
        SPEC_QUICK.to_vec()
    };
    let rows = fig9(&benchmarks, &CORE_COUNTS, scale_from_env());
    println!("Figure 9 — simulation speedup over detailed simulation (SPEC multi-program)");
    println!("{}", format_speedup_table(&rows));
}
