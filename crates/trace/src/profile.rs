//! Statistical workload profiles driving the synthetic front-end.
//!
//! A [`WorkloadProfile`] captures, per benchmark, the program characteristics
//! that determine the behaviour of the timing models downstream: instruction
//! mix, register dependence distances (instruction-level parallelism), memory
//! footprint and locality per cache level, pointer-chasing behaviour
//! (memory-level parallelism), branch behaviour, serializing-instruction rate,
//! and synchronization behaviour for multi-threaded workloads.
//!
//! The profiles do not try to be bit-exact recreations of SPEC CPU2000 or
//! PARSEC; they are calibrated so that the *relative* behaviour the paper
//! relies on is present (e.g. `mcf` and `art` are memory-bound and suffer from
//! L2 sharing, `gcc` is cache-friendly and scales in throughput, `vips` has
//! load imbalance and does not scale, `fluidanimate` is synchronization-heavy).

use serde::{Deserialize, Serialize};

/// Fractions of each instruction class in the dynamic instruction stream.
///
/// The fractions do not need to add up to one; the remainder after loads,
/// stores, branches, long-latency arithmetic and serializing instructions is
/// filled with single-cycle integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixWeights {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of control-transfer instructions.
    pub branch: f64,
    /// Fraction of integer multiplies.
    pub int_mul: f64,
    /// Fraction of integer divides.
    pub int_div: f64,
    /// Fraction of floating-point add/mul operations.
    pub fp: f64,
    /// Fraction of floating-point divides.
    pub fp_div: f64,
    /// Fraction of serializing instructions (memory barriers, syscalls).
    /// Full-system workloads have noticeably more of these.
    pub serializing: f64,
}

impl MixWeights {
    /// A typical integer-code mix (SPECint-like).
    #[must_use]
    pub fn integer_default() -> Self {
        MixWeights {
            load: 0.25,
            store: 0.12,
            branch: 0.17,
            int_mul: 0.01,
            int_div: 0.001,
            fp: 0.0,
            fp_div: 0.0,
            serializing: 0.0002,
        }
    }

    /// A typical floating-point mix (SPECfp-like).
    #[must_use]
    pub fn float_default() -> Self {
        MixWeights {
            load: 0.30,
            store: 0.10,
            branch: 0.05,
            int_mul: 0.01,
            int_div: 0.0005,
            fp: 0.30,
            fp_div: 0.01,
            serializing: 0.0001,
        }
    }

    /// Sum of the explicit fractions (the rest is integer ALU work).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.load
            + self.store
            + self.branch
            + self.int_mul
            + self.int_div
            + self.fp
            + self.fp_div
            + self.serializing
    }

    /// Validates that the mix is a proper sub-distribution.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending field when any fraction is
    /// negative or the total exceeds 1.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("load", self.load),
            ("store", self.store),
            ("branch", self.branch),
            ("int_mul", self.int_mul),
            ("int_div", self.int_div),
            ("fp", self.fp),
            ("fp_div", self.fp_div),
            ("serializing", self.serializing),
        ];
        for (name, v) in fields {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!(
                    "instruction-mix fraction `{name}` = {v} is outside [0, 1]"
                ));
            }
        }
        let total = self.total();
        if total > 1.0 {
            return Err(format!("instruction-mix fractions add up to {total} > 1"));
        }
        Ok(())
    }
}

/// Memory-locality behaviour of a workload.
///
/// Data addresses are drawn from three nested regions sized to interact with
/// the cache hierarchy of Table 1 (32 KB L1, 4 MB shared L2): a hot region
/// that fits in L1, a warm region that fits in (a fraction of) the L2, and a
/// cold region that misses everywhere, plus an optional streaming component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBehavior {
    /// Bytes of the per-thread hot region (L1-resident working set).
    pub hot_bytes: u64,
    /// Bytes of the per-thread warm region (L2-resident working set).
    pub warm_bytes: u64,
    /// Bytes of the per-thread cold region (DRAM-resident footprint).
    pub cold_bytes: u64,
    /// Probability that a data access targets the hot region.
    pub p_hot: f64,
    /// Probability that a data access targets the warm region (the rest goes
    /// to the cold region or the streaming pattern).
    pub p_warm: f64,
    /// Probability that a cold access follows a sequential streaming pattern
    /// (unit-stride walk over the cold region) rather than a random address;
    /// streaming workloads such as `swim` derive spatial locality from this.
    pub p_stream: f64,
    /// Fraction of loads whose address depends on the value of an earlier
    /// load (pointer chasing). Dependent long-latency loads serialize and
    /// reduce memory-level parallelism, which is exactly the first-order
    /// behaviour interval analysis models.
    pub pointer_chase: f64,
    /// Fraction of data accesses that target the region shared between
    /// threads (multi-threaded workloads); drives coherence traffic.
    pub shared_frac: f64,
    /// Fraction of shared accesses that are writes (upgrades/invalidations).
    pub shared_write_frac: f64,
    /// Size in bytes of the shared region.
    pub shared_bytes: u64,
}

impl MemoryBehavior {
    /// Cache-friendly default: nearly everything hits in the L1/L2.
    #[must_use]
    pub fn cache_friendly() -> Self {
        MemoryBehavior {
            hot_bytes: 16 * 1024,
            warm_bytes: 256 * 1024,
            cold_bytes: 16 * 1024 * 1024,
            p_hot: 0.95,
            p_warm: 0.045,
            p_stream: 0.5,
            pointer_chase: 0.02,
            shared_frac: 0.0,
            shared_write_frac: 0.0,
            shared_bytes: 0,
        }
    }

    /// Memory-bound default: large footprint, frequent L2/DRAM accesses.
    #[must_use]
    pub fn memory_bound() -> Self {
        MemoryBehavior {
            hot_bytes: 24 * 1024,
            warm_bytes: 3 * 1024 * 1024,
            cold_bytes: 256 * 1024 * 1024,
            p_hot: 0.70,
            p_warm: 0.22,
            p_stream: 0.2,
            pointer_chase: 0.25,
            shared_frac: 0.0,
            shared_write_frac: 0.0,
            shared_bytes: 0,
        }
    }

    /// Validates region sizes and probabilities.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem when probabilities are outside
    /// `[0, 1]`, the hot/warm split exceeds 1, or a region has zero size while
    /// being reachable.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("p_hot", self.p_hot),
            ("p_warm", self.p_warm),
            ("p_stream", self.p_stream),
            ("pointer_chase", self.pointer_chase),
            ("shared_frac", self.shared_frac),
            ("shared_write_frac", self.shared_write_frac),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "memory-behaviour probability `{name}` = {p} is outside [0, 1]"
                ));
            }
        }
        if self.p_hot + self.p_warm > 1.0 {
            return Err("p_hot + p_warm exceeds 1".to_string());
        }
        if self.hot_bytes == 0 || self.warm_bytes == 0 || self.cold_bytes == 0 {
            return Err("memory regions must have non-zero size".to_string());
        }
        if self.shared_frac > 0.0 && self.shared_bytes == 0 {
            return Err("shared_frac > 0 requires a non-empty shared region".to_string());
        }
        Ok(())
    }
}

/// Control-flow behaviour of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchBehavior {
    /// Number of static conditional branches in the synthetic program; a
    /// larger number stresses predictor and BTB capacity.
    pub static_branches: u32,
    /// Fraction of branches that are strongly biased (predictable).
    pub biased_frac: f64,
    /// Taken probability of a biased branch.
    pub bias: f64,
    /// Fraction of branches that follow a short repeating loop pattern
    /// (predictable by a local-history predictor).
    pub loop_frac: f64,
    /// Loop trip count for patterned branches.
    pub loop_trip: u32,
    /// The remaining branches are data-dependent with this taken probability
    /// (hard to predict — the source of most mispredictions).
    pub random_taken: f64,
    /// Fraction of dynamic branches that are function calls (exercise RAS).
    pub call_frac: f64,
    /// Fraction of dynamic branches that are indirect jumps.
    pub indirect_frac: f64,
    /// Number of distinct targets per indirect branch.
    pub indirect_targets: u32,
}

impl BranchBehavior {
    /// Predictable control flow (loop-dominated floating-point code).
    #[must_use]
    pub fn predictable() -> Self {
        BranchBehavior {
            static_branches: 256,
            biased_frac: 0.55,
            bias: 0.98,
            loop_frac: 0.40,
            loop_trip: 32,
            random_taken: 0.5,
            call_frac: 0.02,
            indirect_frac: 0.002,
            indirect_targets: 2,
        }
    }

    /// Branchy, hard-to-predict integer control flow.
    #[must_use]
    pub fn irregular() -> Self {
        BranchBehavior {
            static_branches: 3072,
            biased_frac: 0.45,
            bias: 0.92,
            loop_frac: 0.25,
            loop_trip: 8,
            random_taken: 0.45,
            call_frac: 0.06,
            indirect_frac: 0.02,
            indirect_targets: 8,
        }
    }

    /// Validates fractions.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem when a fraction is outside
    /// `[0, 1]` or the static branch count is zero.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("biased_frac", self.biased_frac),
            ("bias", self.bias),
            ("loop_frac", self.loop_frac),
            ("random_taken", self.random_taken),
            ("call_frac", self.call_frac),
            ("indirect_frac", self.indirect_frac),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "branch-behaviour probability `{name}` = {p} is outside [0, 1]"
                ));
            }
        }
        if self.biased_frac + self.loop_frac > 1.0 {
            return Err("biased_frac + loop_frac exceeds 1".to_string());
        }
        if self.static_branches == 0 {
            return Err("static_branches must be non-zero".to_string());
        }
        if self.loop_trip == 0 {
            return Err("loop_trip must be non-zero".to_string());
        }
        Ok(())
    }
}

/// Synchronization behaviour for multi-threaded workloads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncBehavior {
    /// A barrier is placed every `barrier_period` instructions per thread
    /// (0 disables barriers).
    pub barrier_period: u64,
    /// A lock-protected critical section starts every `lock_period`
    /// instructions per thread (0 disables locks).
    pub lock_period: u64,
    /// Length of a critical section in instructions.
    pub critical_section_len: u64,
    /// Number of distinct locks (smaller ⇒ more contention).
    pub num_locks: u32,
    /// Per-thread load imbalance: thread `t` executes
    /// `len * (1 + imbalance * t / (n-1))` instructions between barriers. A
    /// high value makes scaling poor (as observed for `vips` in the paper).
    pub imbalance: f64,
}

impl SyncBehavior {
    /// No synchronization (single-threaded benchmarks).
    #[must_use]
    pub fn none() -> Self {
        SyncBehavior {
            barrier_period: 0,
            lock_period: 0,
            critical_section_len: 0,
            num_locks: 1,
            imbalance: 0.0,
        }
    }

    /// Data-parallel behaviour: infrequent barriers, few locks.
    #[must_use]
    pub fn data_parallel() -> Self {
        SyncBehavior {
            barrier_period: 200_000,
            lock_period: 0,
            critical_section_len: 0,
            num_locks: 1,
            imbalance: 0.05,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem for non-sensical combinations.
    pub fn validate(&self) -> Result<(), String> {
        if self.lock_period > 0 && self.critical_section_len == 0 {
            return Err("lock_period > 0 requires a non-zero critical_section_len".to_string());
        }
        if self.lock_period > 0 && self.num_locks == 0 {
            return Err("lock_period > 0 requires at least one lock".to_string());
        }
        if !(0.0..=4.0).contains(&self.imbalance) {
            return Err(format!("imbalance {} is outside [0, 4]", self.imbalance));
        }
        Ok(())
    }
}

/// Complete statistical profile of one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name (e.g. `"mcf"`, `"fluidanimate"`).
    pub name: String,
    /// Benchmark suite the profile imitates.
    pub suite: Suite,
    /// Instruction mix.
    pub mix: MixWeights,
    /// Memory behaviour.
    pub memory: MemoryBehavior,
    /// Branch behaviour.
    pub branches: BranchBehavior,
    /// Synchronization behaviour (only meaningful for multi-threaded runs).
    pub sync: SyncBehavior,
    /// Mean register dependence distance in instructions; larger values give
    /// more instruction-level parallelism (longer independent chains).
    pub dep_distance_mean: f64,
    /// Size of the instruction footprint in bytes; footprints larger than the
    /// 32 KB L1 I-cache produce instruction-cache misses (e.g. `gcc`, full
    /// system code).
    pub code_footprint: u64,
    /// Default dynamic instruction count per thread when the caller does not
    /// override it.
    pub default_length: u64,
}

/// Benchmark suite of a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPEC CPU2000 integer benchmark.
    SpecInt,
    /// SPEC CPU2000 floating-point benchmark.
    SpecFp,
    /// PARSEC multi-threaded benchmark.
    Parsec,
    /// Synthetic profile defined by the user.
    Custom,
}

impl WorkloadProfile {
    /// Validates every component of the profile.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure found in the instruction mix,
    /// memory behaviour, branch behaviour or synchronization behaviour.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("profile name must not be empty".to_string());
        }
        self.mix.validate()?;
        self.memory.validate()?;
        self.branches.validate()?;
        self.sync.validate()?;
        if self.dep_distance_mean < 1.0 {
            return Err(format!(
                "dep_distance_mean {} must be at least 1",
                self.dep_distance_mean
            ));
        }
        if self.code_footprint == 0 {
            return Err("code_footprint must be non-zero".to_string());
        }
        if self.default_length == 0 {
            return Err("default_length must be non-zero".to_string());
        }
        Ok(())
    }

    /// Whether the profile describes a multi-threaded (PARSEC-like) program.
    #[must_use]
    pub fn is_multithreaded(&self) -> bool {
        self.suite == Suite::Parsec
            || self.sync.barrier_period > 0
            || self.sync.lock_period > 0
            || self.memory.shared_frac > 0.0
    }

    /// Returns a copy of the profile with a different name (useful for
    /// building custom variants in examples and tests).
    #[must_use]
    pub fn renamed(&self, name: &str) -> Self {
        let mut p = self.clone();
        p.name = name.to_string();
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mixes_are_valid() {
        MixWeights::integer_default().validate().unwrap();
        MixWeights::float_default().validate().unwrap();
    }

    #[test]
    fn mix_rejects_over_unity() {
        let mut m = MixWeights::integer_default();
        m.load = 0.9;
        m.fp = 0.9;
        assert!(m.validate().is_err());
    }

    #[test]
    fn mix_rejects_negative() {
        let mut m = MixWeights::integer_default();
        m.store = -0.1;
        assert!(m.validate().is_err());
    }

    #[test]
    fn memory_defaults_are_valid() {
        MemoryBehavior::cache_friendly().validate().unwrap();
        MemoryBehavior::memory_bound().validate().unwrap();
    }

    #[test]
    fn memory_rejects_zero_regions() {
        let mut m = MemoryBehavior::cache_friendly();
        m.hot_bytes = 0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn memory_rejects_shared_without_region() {
        let mut m = MemoryBehavior::cache_friendly();
        m.shared_frac = 0.5;
        m.shared_bytes = 0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn branch_defaults_are_valid() {
        BranchBehavior::predictable().validate().unwrap();
        BranchBehavior::irregular().validate().unwrap();
    }

    #[test]
    fn branch_rejects_zero_static_branches() {
        let mut b = BranchBehavior::predictable();
        b.static_branches = 0;
        assert!(b.validate().is_err());
    }

    #[test]
    fn sync_rejects_lock_without_cs() {
        let mut s = SyncBehavior::data_parallel();
        s.lock_period = 100;
        s.critical_section_len = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn multithreaded_detection() {
        let profile = WorkloadProfile {
            name: "x".to_string(),
            suite: Suite::SpecInt,
            mix: MixWeights::integer_default(),
            memory: MemoryBehavior::cache_friendly(),
            branches: BranchBehavior::irregular(),
            sync: SyncBehavior::none(),
            dep_distance_mean: 4.0,
            code_footprint: 16 * 1024,
            default_length: 1000,
        };
        assert!(!profile.is_multithreaded());
        let mut mt = profile.clone();
        mt.sync.barrier_period = 1000;
        assert!(mt.is_multithreaded());
    }
}
