//! The workspace's single wall-clock portal.
//!
//! Simulated timing must never depend on the host's clock: records are
//! required to be bit-identical at any worker count, and a stray
//! `Instant::now()` inside model code is exactly the kind of
//! nondeterminism that survives code review unnoticed. The rule this
//! repo enforces (statically, via the `iss-lint` source pass) is that
//! **only this module** may read the wall clock; everything else —
//! simulators accumulating `host_seconds`, the perf harness, the sampled
//! runner's phase breakdown — measures elapsed host time through
//! [`HostTimer`], which is observable in reports but never feeds back
//! into simulated state.
//!
//! The type is deliberately minimal: start a timer, read elapsed seconds.
//! There is no way to obtain an absolute timestamp, compare timers, or
//! branch on the clock — an elapsed reading is a reporting quantity, not
//! an input.
//!
//! ```
//! use iss_trace::host_time::HostTimer;
//!
//! let timer = HostTimer::start();
//! let elapsed = timer.elapsed_seconds();
//! assert!(elapsed >= 0.0);
//! ```

use std::time::Instant;

/// A monotonic elapsed-host-seconds stopwatch — the only sanctioned way
/// to observe wall-clock time anywhere in the workspace.
#[derive(Debug, Clone, Copy)]
pub struct HostTimer {
    start: Instant,
}

impl HostTimer {
    /// Starts a timer at the current host instant.
    #[must_use]
    pub fn start() -> Self {
        HostTimer {
            start: Instant::now(),
        }
    }

    /// Seconds of host wall-clock time elapsed since [`HostTimer::start`].
    #[must_use]
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_and_nonnegative() {
        let t = HostTimer::start();
        let a = t.elapsed_seconds();
        let b = t.elapsed_seconds();
        assert!(a >= 0.0);
        assert!(b >= a, "elapsed readings must not go backwards");
    }

    #[test]
    fn timers_are_independent() {
        let outer = HostTimer::start();
        std::hint::black_box((0..1000).sum::<u64>());
        let inner = HostTimer::start();
        // Sample the inner (shorter-lived) timer first: the outer reading
        // then covers a strict superset of the inner interval, so the
        // comparison cannot be raced by the gap between the two samples.
        let inner_elapsed = inner.elapsed_seconds();
        assert!(outer.elapsed_seconds() >= inner_elapsed);
    }
}
