//! Inter-thread synchronization markers and coordination state.
//!
//! The multi-threaded PARSEC-like workloads synchronize through barriers and
//! locks. The functional front-end attaches [`SyncOp`] markers to the dynamic
//! instruction stream; the timing simulators (interval as well as detailed)
//! consult a shared [`SyncController`] to decide when a thread must stall.
//! This mirrors the paper's functional-first organization: the functional
//! simulator produces the instruction stream, the timing simulator determines
//! how long each thread is blocked at each synchronization point.

use serde::{Deserialize, Serialize};

use crate::ThreadId;

/// Synchronization operation attached to a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncOp {
    /// Arrive at barrier `id`; the thread may not proceed past this
    /// instruction until all participating threads have arrived.
    BarrierArrive {
        /// Barrier identifier (monotonically increasing per program phase).
        id: u64,
    },
    /// Attempt to acquire lock `id`; the thread may not proceed until the lock
    /// is free.
    LockAcquire {
        /// Lock identifier.
        id: u64,
    },
    /// Release lock `id`.
    LockRelease {
        /// Lock identifier.
        id: u64,
    },
    /// Thread creation point (main thread spawning workers); modeled as a
    /// serialization point on the spawning thread.
    ThreadSpawn,
    /// Thread join point; the joining thread blocks until `child` finishes.
    ThreadJoin {
        /// Thread being joined.
        child: ThreadId,
    },
}

/// Current blocking state of one thread, as tracked by [`SyncController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Not blocked.
    Running,
    /// Waiting for other threads to arrive at the barrier.
    AtBarrier(u64),
    /// Waiting for a lock held by another thread.
    OnLock(u64),
    /// Waiting for a child thread to terminate.
    Joining(ThreadId),
    /// Thread has exhausted its instruction stream.
    Finished,
}

/// Shared synchronization state across the threads of one multi-threaded
/// workload.
///
/// The controller is deliberately timing-agnostic: the timing simulators call
/// [`SyncController::arrive_barrier`], [`SyncController::try_acquire`] and so
/// on when the corresponding instruction reaches the point at which it would
/// block the pipeline, and poll [`SyncController::is_blocked`] to decide
/// whether a core can make progress in a given cycle.
#[derive(Debug, Clone)]
pub struct SyncController {
    num_threads: usize,
    /// Barrier generation each thread has arrived at (threads arrive at
    /// barriers in program order, so a single counter per thread suffices).
    barrier_arrived: Vec<Option<u64>>,
    /// Number of threads that finished their stream entirely.
    finished: Vec<bool>,
    /// Lock id -> holding thread. A `BTreeMap` keeps the controller free of
    /// any hash-order dependence: lock bookkeeping is pure keyed lookup, and
    /// an ordered map makes that property structural rather than incidental.
    locks: std::collections::BTreeMap<u64, ThreadId>,
    /// Current blocking state per thread.
    state: Vec<BlockReason>,
    /// Statistics: barrier episodes completed.
    barriers_completed: u64,
    /// Statistics: lock acquisitions that had to wait.
    contended_acquires: u64,
    /// Statistics: total lock acquisitions.
    total_acquires: u64,
}

impl SyncController {
    /// Creates a controller for `num_threads` threads, all running.
    #[must_use]
    pub fn new(num_threads: usize) -> Self {
        SyncController {
            num_threads,
            barrier_arrived: vec![None; num_threads],
            finished: vec![false; num_threads],
            locks: std::collections::BTreeMap::new(),
            state: vec![BlockReason::Running; num_threads],
            barriers_completed: 0,
            contended_acquires: 0,
            total_acquires: 0,
        }
    }

    /// Number of threads participating in the workload.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Whether `thread` is currently blocked on a synchronization condition.
    #[must_use]
    pub fn is_blocked(&self, thread: ThreadId) -> bool {
        !matches!(self.state[thread], BlockReason::Running)
    }

    /// Current blocking reason of `thread`.
    #[must_use]
    pub fn block_reason(&self, thread: ThreadId) -> BlockReason {
        self.state[thread]
    }

    /// Number of barrier episodes in which every live thread arrived.
    #[must_use]
    pub fn barriers_completed(&self) -> u64 {
        self.barriers_completed
    }

    /// `(contended, total)` lock acquisition counts.
    #[must_use]
    pub fn lock_contention(&self) -> (u64, u64) {
        (self.contended_acquires, self.total_acquires)
    }

    /// Registers that `thread` arrived at barrier `id`. Returns `true` when
    /// the barrier is released by this arrival (all live threads arrived).
    pub fn arrive_barrier(&mut self, thread: ThreadId, id: u64) -> bool {
        self.barrier_arrived[thread] = Some(id);
        self.state[thread] = BlockReason::AtBarrier(id);
        self.maybe_release_barrier(id)
    }

    fn maybe_release_barrier(&mut self, id: u64) -> bool {
        let all_arrived = (0..self.num_threads)
            .all(|t| self.finished[t] || matches!(self.barrier_arrived[t], Some(b) if b >= id));
        if all_arrived {
            for t in 0..self.num_threads {
                if matches!(self.state[t], BlockReason::AtBarrier(b) if b <= id) {
                    self.state[t] = BlockReason::Running;
                }
            }
            self.barriers_completed += 1;
        }
        all_arrived
    }

    /// Attempts to acquire lock `id` for `thread`. Returns `true` on success;
    /// on failure the thread is marked blocked until the holder releases.
    pub fn try_acquire(&mut self, thread: ThreadId, id: u64) -> bool {
        self.total_acquires += 1;
        match self.locks.get(&id) {
            Some(&holder) if holder != thread => {
                self.contended_acquires += 1;
                self.state[thread] = BlockReason::OnLock(id);
                false
            }
            _ => {
                self.locks.insert(id, thread);
                self.state[thread] = BlockReason::Running;
                true
            }
        }
    }

    /// Releases lock `id` held by `thread` and wakes one waiter (if any).
    ///
    /// Releasing a lock the thread does not hold is ignored (the synthetic
    /// front-end never produces unmatched releases, but robustness costs
    /// nothing here).
    pub fn release(&mut self, thread: ThreadId, id: u64) {
        if self.locks.get(&id) == Some(&thread) {
            self.locks.remove(&id);
            // Wake the lowest-numbered waiter deterministically.
            if let Some(waiter) = (0..self.num_threads)
                .find(|&t| matches!(self.state[t], BlockReason::OnLock(l) if l == id))
            {
                self.locks.insert(id, waiter);
                self.state[waiter] = BlockReason::Running;
            }
        }
    }

    /// Marks `thread` as having exhausted its instruction stream. Any barrier
    /// other threads are waiting on may become releasable.
    pub fn mark_finished(&mut self, thread: ThreadId) {
        self.finished[thread] = true;
        self.state[thread] = BlockReason::Finished;
        // A finished thread can never arrive at a pending barrier; re-evaluate
        // the lowest barrier id any thread is currently blocked on.
        let pending: Vec<u64> = (0..self.num_threads)
            .filter_map(|t| match self.state[t] {
                BlockReason::AtBarrier(b) => Some(b),
                _ => None,
            })
            .collect();
        for id in pending {
            self.maybe_release_barrier(id);
        }
        // Wake joiners.
        for t in 0..self.num_threads {
            if matches!(self.state[t], BlockReason::Joining(c) if c == thread) {
                self.state[t] = BlockReason::Running;
            }
        }
    }

    /// Whether `thread` has finished its stream.
    #[must_use]
    pub fn is_finished(&self, thread: ThreadId) -> bool {
        self.finished[thread]
    }

    /// Registers that `thread` waits for `child` to finish. Returns `true` if
    /// the child already finished (no blocking necessary).
    pub fn join(&mut self, thread: ThreadId, child: ThreadId) -> bool {
        if self.finished[child] {
            true
        } else {
            self.state[thread] = BlockReason::Joining(child);
            false
        }
    }

    /// Whether every thread has finished.
    #[must_use]
    pub fn all_finished(&self) -> bool {
        self.finished.iter().all(|&f| f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_releases_when_all_arrive() {
        let mut s = SyncController::new(3);
        assert!(!s.arrive_barrier(0, 1));
        assert!(s.is_blocked(0));
        assert!(!s.arrive_barrier(1, 1));
        assert!(s.arrive_barrier(2, 1));
        assert!(!s.is_blocked(0));
        assert!(!s.is_blocked(1));
        assert!(!s.is_blocked(2));
        assert_eq!(s.barriers_completed(), 1);
    }

    #[test]
    fn barrier_ignores_finished_threads() {
        let mut s = SyncController::new(2);
        s.mark_finished(1);
        assert!(
            s.arrive_barrier(0, 1),
            "lone live thread releases immediately"
        );
        assert!(!s.is_blocked(0));
    }

    #[test]
    fn finishing_late_releases_waiting_barrier() {
        let mut s = SyncController::new(2);
        assert!(!s.arrive_barrier(0, 1));
        assert!(s.is_blocked(0));
        s.mark_finished(1);
        assert!(
            !s.is_blocked(0),
            "finish of the other thread must release the barrier"
        );
    }

    #[test]
    fn lock_contention_and_handoff() {
        let mut s = SyncController::new(2);
        assert!(s.try_acquire(0, 10));
        assert!(!s.try_acquire(1, 10));
        assert!(s.is_blocked(1));
        s.release(0, 10);
        // Lock is handed directly to the waiter.
        assert!(!s.is_blocked(1));
        assert!(!s.try_acquire(0, 10), "thread 1 now holds the lock");
        assert_eq!(s.lock_contention(), (2, 3));
    }

    #[test]
    fn reacquire_by_holder_is_not_contended() {
        let mut s = SyncController::new(1);
        assert!(s.try_acquire(0, 1));
        assert!(s.try_acquire(0, 1));
        assert_eq!(s.lock_contention(), (0, 2));
    }

    #[test]
    fn release_of_unheld_lock_is_ignored() {
        let mut s = SyncController::new(2);
        s.release(0, 99);
        assert!(s.try_acquire(1, 99));
    }

    #[test]
    fn join_blocks_until_child_finishes() {
        let mut s = SyncController::new(2);
        assert!(!s.join(0, 1));
        assert!(s.is_blocked(0));
        s.mark_finished(1);
        assert!(!s.is_blocked(0));
        assert!(s.join(0, 1), "joining a finished thread does not block");
    }

    #[test]
    fn lock_handoff_is_order_independent() {
        // Drive the same contention scenario over many distinct lock ids
        // (so a hash-ordered map would visit them in a scrambled order) and
        // check the observable outcome is identical to replaying the same
        // operations one lock at a time. Blocked-waiter wakeup must depend
        // only on thread numbering, never on map iteration order.
        let ids: Vec<u64> = (0..64).map(|i| i * 0x9e37_79b9 + 7).collect();

        let mut interleaved = SyncController::new(3);
        for &id in &ids {
            assert!(interleaved.try_acquire(0, id));
        }
        for &id in &ids {
            assert!(!interleaved.try_acquire(2, id));
            assert!(!interleaved.try_acquire(1, id));
        }
        for &id in ids.iter().rev() {
            interleaved.release(0, id);
        }

        let mut sequential = SyncController::new(3);
        for &id in &ids {
            assert!(sequential.try_acquire(0, id));
            assert!(!sequential.try_acquire(2, id));
            assert!(!sequential.try_acquire(1, id));
            sequential.release(0, id);
        }

        // In both schedules every lock must have been handed to the
        // lowest-numbered waiter: thread 2 stays blocked, thread 1 runs.
        for s in [&interleaved, &sequential] {
            assert!(!s.is_blocked(1), "lowest-numbered waiter must be woken");
            assert!(s.is_blocked(2), "higher-numbered waiter stays blocked");
        }
        assert_eq!(interleaved.lock_contention(), sequential.lock_contention());
        assert_eq!(interleaved.block_reason(2), sequential.block_reason(2));
    }

    #[test]
    fn all_finished_tracks_every_thread() {
        let mut s = SyncController::new(2);
        assert!(!s.all_finished());
        s.mark_finished(0);
        assert!(!s.all_finished());
        s.mark_finished(1);
        assert!(s.all_finished());
    }
}
