//! Fast, non-cryptographic hashing for the simulators' hot-path maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is DoS-resistant but costs
//! tens of cycles per lookup — a real tax when the detailed model touches
//! several maps per simulated instruction. The keys here are small integers
//! derived from simulated state (cache line numbers, sequence numbers), not
//! attacker-controlled input, so the FxHash multiply-xor scheme used by the
//! Rust compiler itself is the right trade. Hand-rolled because the
//! container vendors its dependencies (no `rustc-hash` on crates.io access).
//!
//! Swapping the hasher changes nothing observable: `HashMap` semantics are
//! hasher-independent, and no simulator iterates a map in hash order.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiply constant (from Firefox / rustc-hash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher: rotate, xor, multiply per 8-byte word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_ne_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_ne_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_behaves_like_a_map() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&i));
        }
        m.remove(&640);
        assert_eq!(m.get(&640), None);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn hashes_differ_across_nearby_keys() {
        use std::hash::Hash;
        let hash_of = |k: u64| {
            let mut h = FxHasher::default();
            k.hash(&mut h);
            h.finish()
        };
        // Not a quality suite — just a guard against a degenerate
        // implementation mapping consecutive line addresses together.
        let hashes: FxHashSet<u64> = (0..4096u64).map(|i| hash_of(i * 64)).collect();
        assert_eq!(hashes.len(), 4096);
    }

    #[test]
    fn partial_words_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 4]);
        assert_ne!(a.finish(), c.finish());
    }
}
