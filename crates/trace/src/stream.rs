//! Synthetic dynamic-instruction-stream generation.
//!
//! [`SyntheticStream`] plays the role of the functional simulator in the
//! paper's functional-first organization: it produces a dynamic instruction
//! stream (in program order, without wrong-path instructions) which the timing
//! models consume at the window tail. The stream is fully deterministic given
//! `(profile, thread, seed, length)`, which is what allows the interval model
//! and the detailed model to simulate *exactly the same* execution and makes
//! the error figures meaningful.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::inst::{BranchClass, BranchInfo, DynInst, MemAccess, OpClass, RegId};
use crate::profile::WorkloadProfile;
use crate::sync::SyncOp;
use crate::{ThreadId, NUM_ARCH_REGS};

/// A source of dynamic instructions in program order.
///
/// Implementations must be deterministic: two streams constructed with the
/// same inputs must yield identical instruction sequences.
pub trait InstructionStream {
    /// Produces the next dynamic instruction, or `None` when the stream ends.
    fn next_inst(&mut self) -> Option<DynInst>;

    /// Number of instructions remaining, when known.
    fn remaining_hint(&self) -> Option<u64> {
        None
    }
}

/// Blanket implementation so boxed streams remain usable through the trait.
impl<S: InstructionStream + ?Sized> InstructionStream for Box<S> {
    fn next_inst(&mut self) -> Option<DynInst> {
        (**self).next_inst()
    }

    fn remaining_hint(&self) -> Option<u64> {
        (**self).remaining_hint()
    }
}

/// Behaviour of one static branch site in the synthetic program.
#[derive(Debug, Clone, Copy)]
enum BranchKind {
    /// Strongly biased conditional branch (taken with probability `bias`).
    Biased { bias: f64 },
    /// Loop back-edge: taken `trip - 1` times, then not taken once.
    Loop { trip: u32 },
    /// Data-dependent conditional branch, taken with probability `p`.
    Random { p: f64 },
    /// Direct call to a function entry block.
    Call,
    /// Return to the call site on top of the call stack.
    Return,
    /// Indirect jump with several possible target blocks.
    Indirect { num_targets: u32 },
}

/// One static branch site.
#[derive(Debug, Clone)]
struct BranchSite {
    kind: BranchKind,
    /// Taken-target block index (for indirect branches, the first of the
    /// candidate targets).
    target_block: usize,
    /// Loop-counter state for `Loop` branches.
    loop_count: u32,
}

/// Static program layout: a ring of basic blocks, each terminated by a branch.
#[derive(Debug, Clone)]
struct ProgramLayout {
    /// Number of non-branch instructions per basic block.
    block_body_len: u32,
    /// Branch site per block.
    branches: Vec<BranchSite>,
    /// Starting PC of each block.
    block_pc: Vec<u64>,
}

const INST_BYTES: u64 = 4;
const CODE_BASE: u64 = 0x0040_0000;
/// Open-interval bounds for the geometric dependence-distance success
/// probability. `geo_p` outside (0, 1) makes `ln(1 - geo_p)` meaningless
/// (±∞/NaN), so profile-derived values are clamped here at stream
/// construction; both bounds are far outside anything a realistic profile
/// produces (catalog means are 3.0–7.0, i.e. `geo_p` ≈ 0.14–0.33).
const GEO_P_MIN: f64 = 1e-6;
const GEO_P_MAX: f64 = 1.0 - 1e-6;
/// Lower clamp applied to the uniform draw before the geometric inverse-CDF
/// (`rng.gen::<f64>().max(GEO_U_MIN)`): keeps `ln(u)` finite. Also the lower
/// end of the domain the threshold table must classify.
pub const GEO_U_MIN: f64 = 1e-12;
/// The dependence pools (`recent_int_dsts` / `recent_fp_dsts`) keep at most
/// this many registers, so sampled distances beyond it all select index 0.
/// Also the length of the [`geo_threshold_table`] classify tables.
pub const DEP_POOL_CAP: usize = 64;

/// Fixed-capacity ring of recently written registers (the dependence pool).
/// Semantically a `VecDeque<RegId>` under a push-back/evict-oldest cap of
/// [`DEP_POOL_CAP`], but 128 bytes inline with no heap traffic: `alloc_dst`
/// runs once per compute/load instruction and the deque's push + overflow-pop
/// pair showed up on the generation hot path.
#[derive(Debug, Clone)]
struct RecentRing {
    buf: [RegId; DEP_POOL_CAP],
    /// Index of the oldest entry.
    head: usize,
    len: usize,
}

impl RecentRing {
    fn new() -> Self {
        RecentRing {
            buf: [0; DEP_POOL_CAP],
            head: 0,
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `r`, evicting the oldest entry once the pool is full — the
    /// ring equivalent of `push_back` + `pop_front` past the cap.
    fn push_capped(&mut self, r: RegId) {
        if self.len < DEP_POOL_CAP {
            let tail = (self.head + self.len) & (DEP_POOL_CAP - 1);
            self.buf[tail] = r;
            self.len += 1;
        } else {
            self.buf[self.head] = r;
            self.head = (self.head + 1) & (DEP_POOL_CAP - 1);
        }
    }

    /// The entry at logical index `idx` (0 = oldest), if present.
    fn get(&self, idx: usize) -> Option<RegId> {
        (idx < self.len).then(|| self.buf[(self.head + idx) & (DEP_POOL_CAP - 1)])
    }
}

/// Capped geometric distance exactly as `pick_src` historically computed it:
/// `ceil(ln(u) / ln(1 - geo_p))`, at least 1, saturated at [`DEP_POOL_CAP`]
/// (the saturation is invisible to callers because the pool index is
/// `len.saturating_sub(dist.min(len))` with `len <= DEP_POOL_CAP`).
fn geo_dist_oracle(u: f64, geo_ln_denom: f64) -> usize {
    let dist = (u.ln() / geo_ln_denom).ceil().max(1.0) as usize;
    dist.min(DEP_POOL_CAP)
}

/// Finds, for every distance `k` in `1..=DEP_POOL_CAP`, the smallest `u` in
/// `[GEO_U_MIN, 1.0)` with `geo_dist_oracle(u) <= k`, by bisection over f64
/// bit patterns (positive f64s order identically as bits). The oracle is
/// monotone non-increasing in `u`, so each boundary is exact: classifying a
/// draw against the table reproduces the oracle bit-for-bit without the two
/// `ln` calls per generated instruction.
fn geo_dist_thresholds(geo_ln_denom: f64) -> [f64; DEP_POOL_CAP] {
    let mut table = [GEO_U_MIN; DEP_POOL_CAP];
    for (i, slot) in table.iter_mut().enumerate() {
        let k = i + 1;
        if geo_dist_oracle(GEO_U_MIN, geo_ln_denom) <= k {
            continue; // every draw in the domain already lands at <= k
        }
        let mut lo = GEO_U_MIN.to_bits(); // oracle(lo) > k
        let mut hi = 1.0f64.to_bits() - 1; // largest f64 < 1.0; oracle == 1
        debug_assert!(geo_dist_oracle(f64::from_bits(hi), geo_ln_denom) <= k);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if geo_dist_oracle(f64::from_bits(mid), geo_ln_denom) <= k {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        *slot = f64::from_bits(hi);
        // A non-monotone libm `ln` could in principle fool the bisection;
        // pin the boundary exactly (one ulp below must classify above `k`).
        debug_assert!(geo_dist_oracle(f64::from_bits(hi), geo_ln_denom) <= k);
        debug_assert!(geo_dist_oracle(f64::from_bits(hi - 1), geo_ln_denom) > k);
    }
    table
}

/// Builds the descending inverse-CDF threshold table for a geometric
/// dependence-distance distribution with the given mean, applying the same
/// `geo_p` clamping as [`SyntheticStream`] construction. Classifying a
/// clamped uniform draw against the table via [`geo_classify`] reproduces
/// `ceil(ln(u) / ln(1 - geo_p))` (capped at [`DEP_POOL_CAP`]) bit-for-bit
/// without the per-draw `ln`.
#[must_use]
pub fn geo_threshold_table(dep_distance_mean: f64) -> [f64; DEP_POOL_CAP] {
    let geo_p = (1.0 / dep_distance_mean.max(1.0)).clamp(GEO_P_MIN, GEO_P_MAX);
    geo_dist_thresholds((1.0 - geo_p).ln())
}

/// Picks the branchless-head length [`geo_classify`] should use for a
/// geometric distribution with the given mean: enough of the descending
/// table to hold most of the probability mass, or zero (pure binary
/// search) when the distribution is too spread out for a head to pay.
///
/// The cutoffs come from measurement on the reference host, best-of-5 over
/// one million draws at each catalog mean: an 8-entry head wins 1.6x at
/// mean 3 but loses 30% at mean 7 (the head misses too often and the
/// mispredicted fallback branch eats the savings); a 16-entry head is the
/// best middle ground near mean 5; above that nothing beats plain
/// `partition_point`. The choice only affects speed, never results.
#[must_use]
pub fn geo_classify_head(dep_distance_mean: f64) -> usize {
    if dep_distance_mean < 4.0 {
        iss_simd::LANE_WIDTH
    } else if dep_distance_mean < 6.0 {
        2 * iss_simd::LANE_WIDTH
    } else {
        0
    }
}

/// Classifies a clamped uniform draw `u` (at least [`GEO_U_MIN`], below 1.0)
/// against a descending threshold table: returns the 1-based geometric
/// distance, capped at `thresholds.len()`. This is the single copy of the
/// classify logic shared by the generator hot path, the exhaustive boundary
/// test, and the kernel benchmarks; `head` selects the speed strategy (use
/// [`geo_classify_head`]) and never changes the result.
///
/// The table is descending and the predicate `u < t` is monotone along it,
/// so the number of leading thresholds still above `u` (what
/// `partition_point` finds by binary search) equals the *total* number of
/// thresholds above `u`. A geometric table concentrates its probability
/// mass in the first few entries, so the hot path counts the first `head`
/// thresholds with a branchless lane scan ([`iss_simd::count_gt_f64`]) and
/// answers directly when the draw lands inside — the common case — falling
/// back to `partition_point` over the tail otherwise. Measured negative
/// result, recorded so nobody re-learns it: counting the *whole* 64-entry
/// table ("replace the binary search with one branchless scan") is
/// slower than `partition_point`, whose cmov binary search is already
/// branch-free; only the short-head hybrid wins.
#[must_use]
pub fn geo_classify(thresholds: &[f64], head: usize, u: f64) -> usize {
    // Match on the two lane-sized heads so `count_gt_f64` inlines with a
    // compile-time length and unrolls completely.
    match head {
        h if h == iss_simd::LANE_WIDTH && thresholds.len() >= h => {
            classify_with_head::<8>(thresholds, u)
        }
        h if h == 2 * iss_simd::LANE_WIDTH && thresholds.len() >= h => {
            classify_with_head::<16>(thresholds, u)
        }
        _ => thresholds.partition_point(|&t| u < t) + 1,
    }
}

/// Fixed-head hybrid classify body shared by the [`geo_classify`] arms.
fn classify_with_head<const H: usize>(thresholds: &[f64], u: f64) -> usize {
    let n = iss_simd::count_gt_f64(&thresholds[..H], u);
    if n < H {
        return n + 1;
    }
    // All `H` head thresholds sit above the draw, so the answer lies in
    // the tail; `H +` restores the global index.
    H + thresholds[H..].partition_point(|&t| u < t) + 1
}
/// Per-thread private data regions are spaced far apart so that different
/// threads never alias in the caches (other than through the shared region).
const THREAD_DATA_STRIDE: u64 = 1 << 40;
const HOT_BASE: u64 = 1 << 33;
const WARM_BASE: u64 = 1 << 34;
const COLD_BASE: u64 = 1 << 35;
/// The shared region lives at the same virtual addresses for every thread.
const SHARED_BASE: u64 = 1 << 50;
/// Lock words live in their own shared cache lines.
const LOCK_BASE: u64 = (1 << 50) + (1 << 40);

impl ProgramLayout {
    fn build(profile: &WorkloadProfile, rng: &mut SmallRng) -> Self {
        let b = &profile.branches;
        let mix = &profile.mix;
        // Average basic-block length implied by the branch fraction.
        let branch_frac = mix.branch.max(0.01);
        let block_body_len = ((1.0 / branch_frac) - 1.0).round().max(1.0) as u32;
        let block_bytes = u64::from(block_body_len + 1) * INST_BYTES;
        let blocks_from_footprint = (profile.code_footprint / block_bytes).max(8) as usize;
        let num_blocks = blocks_from_footprint
            .max(b.static_branches as usize / 4)
            .max(8);

        let mut branches = Vec::with_capacity(num_blocks);
        let mut block_pc = Vec::with_capacity(num_blocks);
        for i in 0..num_blocks {
            block_pc.push(CODE_BASE + i as u64 * block_bytes);
        }
        for i in 0..num_blocks {
            let r: f64 = rng.gen();
            let class_roll: f64 = rng.gen();
            let kind = if class_roll < b.call_frac {
                BranchKind::Call
            } else if class_roll < b.call_frac * 2.0 {
                // Pair calls with an equal fraction of returns.
                BranchKind::Return
            } else if class_roll < b.call_frac * 2.0 + b.indirect_frac {
                BranchKind::Indirect {
                    num_targets: b.indirect_targets.max(2),
                }
            } else if r < b.biased_frac {
                BranchKind::Biased { bias: b.bias }
            } else if r < b.biased_frac + b.loop_frac {
                BranchKind::Loop { trip: b.loop_trip }
            } else {
                BranchKind::Random { p: b.random_taken }
            };
            // Real programs spend most of their time in loops and nearby
            // basic blocks; only calls and indirect jumps travel far. This
            // control-flow locality is what gives the instruction cache and
            // the BTB realistic hit rates.
            let target_block = match kind {
                BranchKind::Call | BranchKind::Return | BranchKind::Indirect { .. } => {
                    rng.gen_range(0..num_blocks)
                }
                BranchKind::Loop { .. } => {
                    // Short backward edge forming a loop body of 1-4 blocks.
                    let body: usize = rng.gen_range(1..=4);
                    i.saturating_sub(body.min(i))
                }
                BranchKind::Biased { .. } | BranchKind::Random { .. } => {
                    if rng.gen::<f64>() < 0.9 {
                        // Local forward/backward jump within +-8 blocks.
                        let offset = rng.gen_range(-8i64..=8);
                        (i as i64 + offset).rem_euclid(num_blocks as i64) as usize
                    } else {
                        rng.gen_range(0..num_blocks)
                    }
                }
            };
            branches.push(BranchSite {
                kind,
                target_block,
                loop_count: 0,
            });
        }
        ProgramLayout {
            block_body_len,
            branches,
            block_pc,
        }
    }

    fn num_blocks(&self) -> usize {
        self.branches.len()
    }
}

/// Deterministic synthetic instruction stream for one thread of a workload.
#[derive(Debug, Clone)]
pub struct SyntheticStream {
    profile: WorkloadProfile,
    thread: ThreadId,
    rng: SmallRng,
    layout: ProgramLayout,

    /// Remaining instructions to emit.
    remaining: u64,
    /// Total instructions requested.
    total: u64,
    /// Dynamic sequence number of the next instruction.
    seq: u64,

    // --- control-flow state ---
    current_block: usize,
    /// Position inside the current block body (0..block_body_len, then branch).
    block_pos: u32,
    /// Call stack of return-target blocks.
    call_stack: Vec<usize>,

    // --- dependence state ---
    recent_int_dsts: RecentRing,
    recent_fp_dsts: RecentRing,
    /// Destination register of the most recent load (for pointer chasing).
    last_load_dst: Option<RegId>,
    next_int_reg: RegId,
    next_fp_reg: RegId,
    /// `ln(1 - 1/dep_distance_mean)`, the denominator of the inverse-CDF
    /// geometric sampling in `pick_src`. Kept for the slow-path oracle; the
    /// hot path classifies the uniform draw against `geo_thresholds` instead.
    geo_ln_denom: f64,
    /// `geo_thresholds[k-1]` is the smallest draw `u` for which the oracle
    /// `ceil(ln(u)/geo_ln_denom).max(1).min(64)` yields a distance `<= k`.
    /// The oracle is monotone non-increasing in `u` (every step — `ln`,
    /// division by a fixed negative, `ceil`, `max`, the saturating cast — is
    /// monotone as computed), so the exact f64 boundaries exist and are found
    /// once by bisection over bit patterns ([`geo_dist_thresholds`]). Turning
    /// two `ln` calls per instruction into a 6-probe binary search is the
    /// single largest win on the generation hot path, and it is bit-identical
    /// because distances beyond 64 are indistinguishable from 64: the
    /// dependence pools hold at most 64 registers and the index is
    /// `len - dist.min(len)`.
    geo_thresholds: [f64; 64],
    /// Branchless-head length for the classify, frozen per stream from the
    /// profile mean by [`geo_classify_head`]; a speed strategy only.
    geo_head: usize,
    /// Cumulative instruction-mix ladder (load, store, int_mul, int_div, fp,
    /// fp_div, serializing), precomputed with the exact `acc += scale(x)`
    /// sequence `next_inst` used to evaluate inline — the mix is constant per
    /// stream, so the ~7 divisions per body instruction fold into constants.
    mix_thresholds: [f64; 7],

    // --- data-address state ---
    stream_cursor: u64,
    data_base: u64,

    // --- synchronization schedule ---
    barrier_period: u64,
    next_barrier_at: u64,
    next_barrier_id: u64,
    lock_period: u64,
    next_lock_at: u64,
    critical_remaining: u64,
    held_lock: Option<u64>,
}

impl SyntheticStream {
    /// Creates a stream for a single-threaded run (or one thread of a
    /// multi-programmed workload, where each core runs an independent copy).
    ///
    /// `length` is the number of dynamic instructions to produce.
    #[must_use]
    pub fn new(profile: &WorkloadProfile, thread: ThreadId, seed: u64, length: u64) -> Self {
        Self::with_threads(profile, thread, 1, seed, length)
    }

    /// Creates the stream of `thread` out of `num_threads` threads of a
    /// multi-threaded workload. Thread index and count determine the
    /// load-imbalance scaling of the synchronization schedule.
    #[must_use]
    pub fn with_threads(
        profile: &WorkloadProfile,
        thread: ThreadId,
        num_threads: usize,
        seed: u64,
        length: u64,
    ) -> Self {
        assert!(length > 0, "stream length must be non-zero");
        assert!(num_threads > 0, "a workload needs at least one thread");
        assert!(thread < num_threads, "thread index out of range");
        // The program layout must be identical across threads of the same
        // workload (same binary), so it is derived from the seed only.
        let mut layout_rng = SmallRng::seed_from_u64(seed ^ 0x5eed_1a10);
        let layout = ProgramLayout::build(profile, &mut layout_rng);
        let rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ thread as u64);

        // Load imbalance: later threads do more work between barriers, so the
        // earlier threads wait (poor scaling for imbalanced workloads).
        let imbalance_scale = if num_threads > 1 {
            1.0 + profile.sync.imbalance * thread as f64 / (num_threads - 1) as f64
        } else {
            1.0
        };
        let barrier_period = if profile.sync.barrier_period > 0 && num_threads > 1 {
            ((profile.sync.barrier_period as f64) * imbalance_scale) as u64
        } else {
            0
        };
        let lock_period = if num_threads > 1 {
            profile.sync.lock_period
        } else {
            0
        };

        let current_block = 0;
        // The geometric success probability must stay inside the open
        // interval (0, 1): a `dep_distance_mean` of exactly 1.0 (or any
        // degenerate value `max(1.0)` maps there) would make `geo_p` = 1.0
        // and `ln(1 - geo_p)` blow up to `ln(0)` — the old `.max(1e-9)`
        // rescue produced a denominator of ≈ -20.7 that collapsed *every*
        // dependence distance to 1 instead of mostly-1-sometimes-more.
        let geo_p = (1.0 / profile.dep_distance_mean.max(1.0)).clamp(GEO_P_MIN, GEO_P_MAX);
        let geo_ln_denom = (1.0 - geo_p).ln();
        // The cumulative mix ladder, evaluated with the exact expression
        // sequence `next_inst` historically computed inline (same `acc`
        // accumulation order, same clamp), so the thresholds — and therefore
        // every emitted instruction — are bit-identical.
        let mix = &profile.mix;
        let scale = |x: f64| x / (1.0 - mix.branch).max(1e-9);
        let mut mix_thresholds = [0.0f64; 7];
        let mut acc = scale(mix.load);
        mix_thresholds[0] = acc;
        for (slot, class) in mix_thresholds[1..].iter_mut().zip([
            mix.store,
            mix.int_mul,
            mix.int_div,
            mix.fp,
            mix.fp_div,
            mix.serializing,
        ]) {
            acc += scale(class);
            *slot = acc;
        }
        SyntheticStream {
            geo_ln_denom,
            geo_thresholds: geo_dist_thresholds(geo_ln_denom),
            geo_head: geo_classify_head(profile.dep_distance_mean),
            mix_thresholds,
            profile: profile.clone(),
            thread,
            rng,
            layout,
            remaining: length,
            total: length,
            seq: 0,
            current_block,
            block_pos: 0,
            call_stack: Vec::new(),
            recent_int_dsts: RecentRing::new(),
            recent_fp_dsts: RecentRing::new(),
            last_load_dst: None,
            next_int_reg: 1,
            next_fp_reg: 33,
            stream_cursor: 0,
            data_base: THREAD_DATA_STRIDE * thread as u64,
            barrier_period,
            next_barrier_at: if barrier_period > 0 {
                barrier_period
            } else {
                u64::MAX
            },
            next_barrier_id: 1,
            lock_period,
            next_lock_at: if lock_period > 0 {
                lock_period
            } else {
                u64::MAX
            },
            critical_remaining: 0,
            held_lock: None,
        }
    }

    /// Creates one copy of a multi-programmed workload: the *same* execution
    /// as [`SyntheticStream::new`] with thread 0 (identical instruction
    /// sequence, branch outcomes and relative data layout), relocated into
    /// `copy`'s private address space.
    ///
    /// Identical-but-relocated copies are what the paper's Figure 6 runs:
    /// co-scheduling `n` instances of the same program means each instance
    /// executes the same work, and any per-copy slowdown relative to the solo
    /// run is attributable purely to shared-resource contention. (Deriving
    /// per-copy streams from different seeds instead would confound
    /// contention with workload variation and break the STP/ANTT baselines.)
    ///
    /// Independent programs share nothing, so the profile's shared-data
    /// fraction is folded back into the private regions and no
    /// synchronization is scheduled.
    #[must_use]
    pub fn program_copy(profile: &WorkloadProfile, copy: ThreadId, seed: u64, length: u64) -> Self {
        let mut private = profile.clone();
        private.memory.shared_frac = 0.0;
        private.memory.shared_bytes = 0;
        let mut s = Self::with_threads(&private, 0, 1, seed, length);
        s.thread = copy;
        s.data_base = THREAD_DATA_STRIDE * copy as u64;
        // Relocate the code as well: independent processes do not share text
        // pages here, so co-running copies must not warm the shared L2 for
        // each other's instruction fetches (that would let a copy run
        // *faster* than its solo baseline and push STP above the copy
        // count). The stride preserves the low address bits, so cache-set
        // mapping is identical to the solo run.
        for pc in &mut s.layout.block_pc {
            *pc += s.data_base;
        }
        s
    }

    /// The workload profile this stream was built from.
    #[must_use]
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// The thread index of this stream.
    #[must_use]
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Total number of instructions this stream will produce.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.total
    }

    fn current_pc(&self) -> u64 {
        self.layout.block_pc[self.current_block] + u64::from(self.block_pos) * INST_BYTES
    }

    fn alloc_dst(&mut self, fp: bool) -> RegId {
        if fp {
            let r = self.next_fp_reg;
            self.next_fp_reg += 1;
            if self.next_fp_reg >= NUM_ARCH_REGS {
                self.next_fp_reg = 33;
            }
            self.recent_fp_dsts.push_capped(r);
            r
        } else {
            let r = self.next_int_reg;
            self.next_int_reg += 1;
            if self.next_int_reg >= 32 {
                self.next_int_reg = 1;
            }
            self.recent_int_dsts.push_capped(r);
            r
        }
    }

    /// Picks a source register produced roughly `dep_distance_mean`
    /// instructions ago (geometric distribution), creating realistic
    /// dependence chains.
    fn pick_src(&mut self, fp: bool) -> Option<RegId> {
        let pool = if fp {
            &self.recent_fp_dsts
        } else {
            &self.recent_int_dsts
        };
        if pool.is_empty() {
            return None;
        }
        // Sample a geometric distance (1-based): classify the uniform draw
        // against the precomputed inverse-CDF boundaries instead of paying
        // `ln` per sample. The last table entry is `GEO_U_MIN`, so the count
        // of thresholds above `u` is always `< DEP_POOL_CAP` and
        // `dist == count + 1` matches `geo_dist_oracle(u)` exactly (see
        // [`geo_dist_thresholds`] and [`geo_classify`]).
        let u: f64 = self.rng.gen::<f64>().max(GEO_U_MIN);
        let dist = geo_classify(&self.geo_thresholds, self.geo_head, u);
        debug_assert_eq!(dist, geo_dist_oracle(u, self.geo_ln_denom));
        let idx = pool.len().saturating_sub(dist.min(pool.len()));
        pool.get(idx)
    }

    fn gen_data_address(&mut self, in_critical_section: bool) -> (u64, bool) {
        let mem = &self.profile.memory;
        // Critical sections work mostly on shared data.
        let shared_p = if in_critical_section {
            (mem.shared_frac * 4.0).min(0.9)
        } else {
            mem.shared_frac
        };
        if mem.shared_bytes > 0 && self.rng.gen::<f64>() < shared_p {
            let off = self.rng.gen_range(0..mem.shared_bytes) & !0x7;
            return (SHARED_BASE + off, true);
        }
        let r: f64 = self.rng.gen();
        let addr = if r < mem.p_hot {
            let off = self.rng.gen_range(0..mem.hot_bytes) & !0x7;
            self.data_base + HOT_BASE + off
        } else if r < mem.p_hot + mem.p_warm {
            // Warm (L2-resident) accesses are strongly skewed towards a
            // frequently-reused prefix of the region (temporal locality):
            // most touches reuse a modest fraction of the working set, which
            // is what lets the shared L2 capture it — and what lets
            // co-running copies evict each other (Figure 6).
            let off = if self.rng.gen::<f64>() < 0.9 {
                let reused_span = (mem.warm_bytes / 32)
                    .clamp(32 * 1024, 256 * 1024)
                    .min(mem.warm_bytes);
                self.rng.gen_range(0..reused_span) & !0x7
            } else {
                self.rng.gen_range(0..mem.warm_bytes) & !0x7
            };
            self.data_base + WARM_BASE + off
        } else if self.rng.gen::<f64>() < mem.p_stream {
            // Unit-stride streaming through the cold region: one new cache
            // line per eight 8-byte elements (spatial locality without a
            // prefetcher).
            self.stream_cursor = (self.stream_cursor + 8) % mem.cold_bytes;
            self.data_base + COLD_BASE + self.stream_cursor
        } else {
            let off = self.rng.gen_range(0..mem.cold_bytes) & !0x7;
            self.data_base + COLD_BASE + off
        };
        (addr, false)
    }

    fn emit_memory(&mut self, seq: u64, pc: u64, is_store: bool) -> DynInst {
        let in_cs = self.critical_remaining > 0;
        let (vaddr, shared) = self.gen_data_address(in_cs);
        let mut is_store = is_store;
        if shared && !is_store {
            // Shared data sees a higher write ratio (coherence upgrades).
            if self.rng.gen::<f64>() < self.profile.memory.shared_write_frac {
                is_store = true;
            }
        }
        let op = if is_store {
            OpClass::Store
        } else {
            OpClass::Load
        };
        let mut srcs = [self.pick_src(false), None];
        // Pointer chasing: the address depends on the most recent load.
        if !is_store && self.rng.gen::<f64>() < self.profile.memory.pointer_chase {
            if let Some(prev) = self.last_load_dst {
                srcs[0] = Some(prev);
            }
        }
        if is_store {
            // A store also reads the value it writes.
            srcs[1] = self.pick_src(false);
        }
        let dst = if is_store {
            None
        } else {
            Some(self.alloc_dst(false))
        };
        if !is_store {
            self.last_load_dst = dst;
        }
        DynInst {
            seq,
            pc,
            op,
            srcs,
            dst,
            mem: Some(MemAccess {
                vaddr,
                size: 8,
                is_store,
                shared,
            }),
            branch: None,
            sync: None,
        }
    }

    fn emit_compute(&mut self, seq: u64, pc: u64, op: OpClass) -> DynInst {
        let fp = op.is_float();
        let srcs = [self.pick_src(fp), self.pick_src(fp)];
        let dst = Some(self.alloc_dst(fp));
        DynInst {
            seq,
            pc,
            op,
            srcs,
            dst,
            mem: None,
            branch: None,
            sync: None,
        }
    }

    fn emit_serializing(&mut self, seq: u64, pc: u64, sync: Option<SyncOp>) -> DynInst {
        DynInst {
            seq,
            pc,
            op: OpClass::Serialize,
            srcs: [None, None],
            dst: None,
            mem: None,
            branch: None,
            sync,
        }
    }

    fn emit_lock_access(&mut self, seq: u64, pc: u64, lock_id: u64, acquire: bool) -> DynInst {
        let vaddr = LOCK_BASE + lock_id * 64;
        DynInst {
            seq,
            pc,
            op: if acquire {
                OpClass::Load
            } else {
                OpClass::Store
            },
            srcs: [self.pick_src(false), None],
            dst: if acquire {
                Some(self.alloc_dst(false))
            } else {
                None
            },
            mem: Some(MemAccess {
                vaddr,
                size: 8,
                is_store: !acquire,
                shared: true,
            }),
            branch: None,
            sync: Some(if acquire {
                SyncOp::LockAcquire { id: lock_id }
            } else {
                SyncOp::LockRelease { id: lock_id }
            }),
        }
    }

    /// Emits the branch that terminates the current block and advances the
    /// control flow to the next block.
    fn emit_branch(&mut self, seq: u64, pc: u64) -> DynInst {
        let num_blocks = self.layout.num_blocks();
        let site = &mut self.layout.branches[self.current_block];
        let fallthrough_block = (self.current_block + 1) % num_blocks;
        let fallthrough = pc + INST_BYTES;

        let (class, taken, target_block): (BranchClass, bool, usize) = match site.kind {
            BranchKind::Biased { bias } => {
                let taken = self.rng.gen::<f64>() < bias;
                (BranchClass::Conditional, taken, site.target_block)
            }
            BranchKind::Loop { trip } => {
                site.loop_count += 1;
                if site.loop_count >= trip {
                    site.loop_count = 0;
                    (BranchClass::Conditional, false, site.target_block)
                } else {
                    (BranchClass::Conditional, true, site.target_block)
                }
            }
            BranchKind::Random { p } => {
                let taken = self.rng.gen::<f64>() < p;
                (BranchClass::Conditional, taken, site.target_block)
            }
            BranchKind::Call => {
                let target = site.target_block;
                (BranchClass::Call, true, target)
            }
            BranchKind::Return => {
                let target = self.call_stack.pop().unwrap_or(site.target_block);
                (BranchClass::Return, true, target)
            }
            BranchKind::Indirect { num_targets } => {
                let pick = self.rng.gen_range(0..num_targets) as usize;
                let target = (site.target_block + pick * 7) % num_blocks;
                (BranchClass::Indirect, true, target)
            }
        };

        if class == BranchClass::Call {
            self.call_stack.push(fallthrough_block);
            if self.call_stack.len() > 64 {
                self.call_stack.remove(0);
            }
        }

        let next_block = if taken {
            target_block
        } else {
            fallthrough_block
        };
        let target = self.layout.block_pc[target_block];

        let src = self.pick_src(false);
        let inst = DynInst {
            seq,
            pc,
            op: OpClass::Branch,
            srcs: [src, None],
            dst: None,
            mem: None,
            branch: Some(BranchInfo {
                class,
                taken,
                target,
                fallthrough,
            }),
            sync: None,
        };

        self.current_block = next_block;
        self.block_pos = 0;
        inst
    }
}

impl InstructionStream for SyntheticStream {
    fn next_inst(&mut self) -> Option<DynInst> {
        if self.remaining == 0 {
            return None;
        }
        let seq = self.seq;
        let pc = self.current_pc();

        // --- synchronization schedule takes priority over the regular mix ---
        // Barriers are never emitted while a lock is held (the release always
        // comes first), which keeps the synthetic programs deadlock-free.
        let inst = if seq >= self.next_barrier_at && self.held_lock.is_none() {
            let id = self.next_barrier_id;
            self.next_barrier_id += 1;
            self.next_barrier_at = seq + self.barrier_period.max(1);
            self.emit_serializing(seq, pc, Some(SyncOp::BarrierArrive { id }))
        } else if self.held_lock.is_some() && self.critical_remaining == 0 {
            let id = self.held_lock.take().expect("held lock present");
            self.next_lock_at = seq + self.lock_period.max(1);
            self.emit_lock_access(seq, pc, id, false)
        } else if self.held_lock.is_none() && seq >= self.next_lock_at {
            let id = u64::from(self.rng.gen_range(0..self.profile.sync.num_locks.max(1)));
            self.held_lock = Some(id);
            self.critical_remaining = self.profile.sync.critical_section_len.max(1);
            self.emit_lock_access(seq, pc, id, true)
        } else {
            if self.critical_remaining > 0 {
                self.critical_remaining -= 1;
            }
            // --- regular instruction mix, structured by basic blocks ---
            if self.block_pos >= self.layout.block_body_len {
                self.emit_branch(seq, pc)
            } else {
                let r: f64 = self.rng.gen();
                // Branches are emitted structurally at block ends (one per
                // block), so the body probability of every other class is
                // inflated by 1/(1 - branch fraction); the remainder after all
                // explicit classes is single-cycle integer ALU filler. The
                // cumulative thresholds are per-stream constants, precomputed
                // at construction with the identical accumulation sequence.
                let t = &self.mix_thresholds;
                if r < t[0] {
                    self.emit_memory(seq, pc, false)
                } else if r < t[1] {
                    self.emit_memory(seq, pc, true)
                } else if r < t[2] {
                    self.emit_compute(seq, pc, OpClass::IntMul)
                } else if r < t[3] {
                    self.emit_compute(seq, pc, OpClass::IntDiv)
                } else if r < t[4] {
                    let op = if self.rng.gen::<bool>() {
                        OpClass::FpAlu
                    } else {
                        OpClass::FpMul
                    };
                    self.emit_compute(seq, pc, op)
                } else if r < t[5] {
                    self.emit_compute(seq, pc, OpClass::FpDiv)
                } else if r < t[6] {
                    self.emit_serializing(seq, pc, None)
                } else {
                    self.emit_compute(seq, pc, OpClass::IntAlu)
                }
            }
        };

        // Advance intra-block position for non-branch instructions (a branch
        // already reset it when switching blocks).
        if inst.op != OpClass::Branch {
            self.block_pos = (self.block_pos + 1).min(self.layout.block_body_len);
        }

        self.seq += 1;
        self.remaining -= 1;
        Some(inst)
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn collect(name: &str, thread: ThreadId, threads: usize, seed: u64, n: u64) -> Vec<DynInst> {
        let p = catalog::profile(name).unwrap();
        let mut s = SyntheticStream::with_threads(&p, thread, threads, seed, n);
        let mut v = Vec::new();
        while let Some(i) = s.next_inst() {
            v.push(i);
        }
        v
    }

    #[test]
    fn stream_produces_requested_length() {
        let v = collect("gcc", 0, 1, 1, 5000);
        assert_eq!(v.len(), 5000);
        assert_eq!(v.first().unwrap().seq, 0);
        assert_eq!(v.last().unwrap().seq, 4999);
    }

    #[test]
    fn stream_is_deterministic() {
        let a = collect("mcf", 0, 1, 99, 3000);
        let b = collect("mcf", 0, 1, 99, 3000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = collect("mcf", 0, 1, 1, 2000);
        let b = collect("mcf", 0, 1, 2, 2000);
        assert_ne!(a, b);
    }

    #[test]
    fn different_threads_use_disjoint_private_data() {
        let a = collect("swim", 0, 2, 7, 2000);
        let b = collect("swim", 1, 2, 7, 2000);
        let private = |v: &[DynInst]| {
            v.iter()
                .filter_map(|i| i.mem)
                .filter(|m| !m.shared)
                .map(|m| m.vaddr)
                .collect::<Vec<_>>()
        };
        let pa = private(&a);
        let pb = private(&b);
        assert!(!pa.is_empty() && !pb.is_empty());
        let max_a = pa.iter().max().unwrap();
        let min_b = pb.iter().min().unwrap();
        assert!(max_a < min_b, "thread-private regions must not overlap");
    }

    #[test]
    fn instruction_mix_is_roughly_respected() {
        let v = collect("gcc", 0, 1, 3, 50_000);
        let n = v.len() as f64;
        let loads = v.iter().filter(|i| i.is_load()).count() as f64 / n;
        let branches = v.iter().filter(|i| i.is_branch()).count() as f64 / n;
        let p = catalog::profile("gcc").unwrap();
        assert!(
            (loads - p.mix.load).abs() < 0.08,
            "load fraction {loads} vs {}",
            p.mix.load
        );
        assert!(
            (branches - p.mix.branch).abs() < 0.08,
            "branch fraction {branches} vs {}",
            p.mix.branch
        );
    }

    #[test]
    fn branch_targets_stay_inside_code_footprint() {
        let v = collect("gcc", 0, 1, 3, 20_000);
        let p = catalog::profile("gcc").unwrap();
        for i in &v {
            if let Some(b) = i.branch {
                assert!(b.target >= CODE_BASE);
                // The layout may round the footprint up to whole blocks; allow 2x.
                assert!(b.target < CODE_BASE + 2 * p.code_footprint + 4096);
            }
        }
    }

    #[test]
    fn loads_and_stores_have_addresses_and_others_do_not() {
        let v = collect("equake", 0, 1, 5, 10_000);
        for i in &v {
            match i.op {
                OpClass::Load | OpClass::Store => assert!(i.mem.is_some()),
                _ => assert!(i.mem.is_none()),
            }
        }
    }

    #[test]
    fn multithreaded_profile_emits_sync_markers() {
        let p = catalog::parsec_profile("fluidanimate").unwrap();
        let mut s = SyntheticStream::with_threads(&p, 0, 4, 11, 60_000);
        let mut barriers = 0;
        let mut acquires = 0;
        let mut releases = 0;
        while let Some(i) = s.next_inst() {
            match i.sync {
                Some(SyncOp::BarrierArrive { .. }) => barriers += 1,
                Some(SyncOp::LockAcquire { .. }) => acquires += 1,
                Some(SyncOp::LockRelease { .. }) => releases += 1,
                _ => {}
            }
        }
        assert!(
            barriers >= 1,
            "expected at least one barrier, got {barriers}"
        );
        assert!(acquires >= 2, "expected lock acquires, got {acquires}");
        assert_eq!(acquires, releases + usize::from(acquires > releases));
    }

    #[test]
    fn single_threaded_run_emits_no_sync() {
        let v = collect("fluidanimate", 0, 1, 11, 30_000);
        assert!(v.iter().all(|i| i.sync.is_none()));
    }

    #[test]
    fn remaining_hint_counts_down() {
        let p = catalog::profile("gzip").unwrap();
        let mut s = SyntheticStream::new(&p, 0, 1, 10);
        assert_eq!(s.remaining_hint(), Some(10));
        s.next_inst();
        assert_eq!(s.remaining_hint(), Some(9));
    }

    #[test]
    #[should_panic(expected = "thread index out of range")]
    fn thread_out_of_range_panics() {
        let p = catalog::profile("gzip").unwrap();
        let _ = SyntheticStream::with_threads(&p, 2, 2, 0, 10);
    }

    /// The geometric threshold table must reproduce the `ln`-based oracle for
    /// *every* representable draw, not just statistically: the table replaces
    /// the oracle on the hot path and a single divergent classification would
    /// change an emitted register and cascade through the golden records.
    /// Exhaustive coverage comes from checking both sides of every bisected
    /// boundary (the only places a divergence could hide, by monotonicity)
    /// plus a dense random sweep as a belt-and-braces cross-check.
    #[test]
    fn geo_threshold_table_matches_ln_oracle() {
        use rand::{Rng, SeedableRng};
        // Catalog-realistic means plus the clamp extremes on both sides.
        let means = [1.0, 1.5, 3.0, 4.0, 5.0, 7.0, 64.0, 1e7];
        for mean in means {
            let geo_p = (1.0 / f64::max(mean, 1.0)).clamp(GEO_P_MIN, GEO_P_MAX);
            let denom = (1.0 - geo_p).ln();
            let table = geo_threshold_table(mean);
            assert_eq!(table, geo_dist_thresholds(denom), "builder mismatch");
            // Every head strategy must classify identically — the chosen
            // head (what the stream uses) plus all the others.
            let classify = |u: f64| {
                let want = geo_classify(&table, geo_classify_head(mean), u);
                for head in [0, 8, 16] {
                    assert_eq!(
                        geo_classify(&table, head, u),
                        want,
                        "mean {mean} head {head} diverges at u {u:e}"
                    );
                }
                want
            };
            for (i, &t) in table.iter().enumerate() {
                let k = i + 1;
                assert!(
                    geo_dist_oracle(t, denom) <= k,
                    "mean {mean}: threshold {k} classifies above itself"
                );
                assert_eq!(
                    classify(t),
                    geo_dist_oracle(t, denom),
                    "mean {mean} at t[{i}]"
                );
                if t > GEO_U_MIN {
                    let below = f64::from_bits(t.to_bits() - 1);
                    assert!(
                        geo_dist_oracle(below, denom) > k,
                        "mean {mean}: threshold {k} is not the least such draw"
                    );
                    assert_eq!(classify(below), geo_dist_oracle(below, denom));
                }
            }
            let mut rng = SmallRng::seed_from_u64(0xd157_u64 ^ mean.to_bits());
            for _ in 0..200_000 {
                let u: f64 = rng.gen::<f64>().max(GEO_U_MIN);
                assert_eq!(
                    classify(u),
                    geo_dist_oracle(u, denom),
                    "mean {mean}, u {u:e}"
                );
            }
        }
    }

    #[test]
    fn lock_accesses_target_lock_lines() {
        let p = catalog::parsec_profile("dedup").unwrap();
        let mut s = SyntheticStream::with_threads(&p, 1, 2, 11, 40_000);
        let mut seen = false;
        while let Some(i) = s.next_inst() {
            if let Some(SyncOp::LockAcquire { id }) = i.sync {
                let m = i.mem.expect("lock acquire carries a memory access");
                assert_eq!(m.vaddr, LOCK_BASE + id * 64);
                assert!(m.shared);
                seen = true;
            }
        }
        assert!(seen);
    }
}
