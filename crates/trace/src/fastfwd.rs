//! Functional fast-forward of instruction streams (no timing).
//!
//! Sampled simulation spends most of its instructions *between* measured
//! units: the streams must advance (so the measured units see the right part
//! of the execution) and the long-lived microarchitectural state — branch
//! tables and the cache hierarchy — must stay warm, but no cycles need to be
//! accounted. [`fast_forward`] is that path: it drains instructions from the
//! per-core [`CheckpointStream`]s as fast as they can be generated, hands
//! every instruction to an observer callback (the sampling controller warms
//! branch predictors and the memory hierarchy there), and keeps the shared
//! [`SyncController`] consistent so barriers, locks and joins hold across
//! functional and timed execution alike.
//!
//! Everything here is driven by simulated state only — stream contents and
//! synchronization outcomes — so a fast-forwarded prefix is exactly as
//! deterministic as a timed one.

use crate::checkpoint::{CheckpointStream, CoreResume};
use crate::inst::DynInst;
use crate::stream::InstructionStream;
use crate::sync::{SyncController, SyncOp};
use crate::ThreadId;

/// Instructions a core consumes before the round-robin scheduler moves on to
/// the next core. Small enough that co-running cores interleave their shared
/// cache accesses at a realistic grain, large enough that scheduling cost
/// disappears next to stream generation.
const ROUND_ROBIN_CHUNK: u64 = 256;

/// Advances every core's stream functionally by (up to) `budget` instructions
/// chip-wide, honoring synchronization.
///
/// Cores are advanced round-robin in deterministic order, each receiving an
/// equal share of the budget. A core stops early when it finishes its stream
/// or blocks on a synchronization condition; blocked cores are revisited as
/// long as any core still makes progress, so a barrier arrival by a later
/// core wakes an earlier one within the same call. When the remaining cores
/// are all blocked, finished, or out of budget, the call returns — the next
/// unit (functional or timed) picks up from a consistent state.
///
/// Every consumed instruction is passed to `observe` (with its core index)
/// before its synchronization side effects are applied, and is counted into
/// `per_core[core].instructions`. Cores that exhaust their stream are marked
/// done in `per_core` and finished in `sync`.
///
/// Returns the number of instructions consumed chip-wide.
///
/// # Panics
///
/// Panics if `streams` and `per_core` disagree on the number of cores.
pub fn fast_forward(
    streams: &mut [CheckpointStream],
    sync: &mut SyncController,
    per_core: &mut [CoreResume],
    budget: u64,
    observe: &mut dyn FnMut(ThreadId, &DynInst),
) -> u64 {
    assert_eq!(
        streams.len(),
        per_core.len(),
        "one resume entry per core stream is required"
    );
    let num_cores = streams.len();
    let live = per_core.iter().filter(|c| !c.done).count() as u64;
    if live == 0 || budget == 0 {
        return 0;
    }
    // Equal shares, remainder to the lowest-numbered live cores.
    let mut share: Vec<u64> = vec![0; num_cores];
    let (base, mut extra) = (budget / live, budget % live);
    for (core, resume) in per_core.iter().enumerate() {
        if !resume.done {
            share[core] = base + u64::from(extra > 0);
            extra = extra.saturating_sub(1);
        }
    }

    let mut consumed = 0u64;
    loop {
        let mut progressed = false;
        for core in 0..num_cores {
            let mut turn = ROUND_ROBIN_CHUNK.min(share[core]);
            while turn > 0 && !per_core[core].done && !sync.is_blocked(core) {
                let Some(inst) = streams[core].next_inst() else {
                    per_core[core].done = true;
                    sync.mark_finished(core);
                    break;
                };
                observe(core, &inst);
                if let Some(op) = inst.sync {
                    match op {
                        SyncOp::BarrierArrive { id } => {
                            sync.arrive_barrier(core, id);
                        }
                        SyncOp::LockAcquire { id } => {
                            let _ = sync.try_acquire(core, id);
                        }
                        SyncOp::LockRelease { id } => sync.release(core, id),
                        SyncOp::ThreadSpawn => {}
                        SyncOp::ThreadJoin { child } => {
                            let _ = sync.join(core, child);
                        }
                    }
                }
                per_core[core].instructions += 1;
                share[core] -= 1;
                turn -= 1;
                consumed += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    consumed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::stream::SyntheticStream;
    use crate::threaded::ThreadedWorkload;

    fn fresh_parts(w: ThreadedWorkload) -> (Vec<CheckpointStream>, SyncController) {
        let (streams, sync) = w.into_parts();
        (
            streams.into_iter().map(CheckpointStream::fresh).collect(),
            sync,
        )
    }

    fn resume_zeroes(n: usize) -> Vec<CoreResume> {
        vec![
            CoreResume {
                time: 0,
                instructions: 0,
                done: false,
            };
            n
        ]
    }

    #[test]
    fn fast_forward_consumes_exactly_the_budget_single_core() {
        let p = catalog::profile("gcc").unwrap();
        let (mut streams, mut sync) = fresh_parts(ThreadedWorkload::single(&p, 7, 10_000));
        let mut per_core = resume_zeroes(1);
        let mut seen = 0u64;
        let consumed = fast_forward(
            &mut streams,
            &mut sync,
            &mut per_core,
            3_000,
            &mut |_, _| {
                seen += 1;
            },
        );
        assert_eq!(consumed, 3_000);
        assert_eq!(seen, 3_000);
        assert_eq!(per_core[0].instructions, 3_000);
        assert!(!per_core[0].done);
    }

    #[test]
    fn fast_forward_marks_exhausted_streams_done() {
        let p = catalog::profile("gzip").unwrap();
        let (mut streams, mut sync) = fresh_parts(ThreadedWorkload::single(&p, 7, 500));
        let mut per_core = resume_zeroes(1);
        let consumed = fast_forward(
            &mut streams,
            &mut sync,
            &mut per_core,
            2_000,
            &mut |_, _| {},
        );
        assert_eq!(consumed, 500);
        assert!(per_core[0].done);
        assert!(sync.is_finished(0));
        assert!(sync.all_finished());
    }

    #[test]
    fn fast_forward_position_matches_a_plain_stream() {
        // After fast-forwarding N instructions, the stream must continue with
        // exactly the instruction a plain stream yields at position N.
        let p = catalog::profile("mcf").unwrap();
        let mut reference = SyntheticStream::new(&p, 0, 3, 2_000);
        let mut expected = Vec::new();
        while let Some(i) = reference.next_inst() {
            expected.push(i);
        }
        let (mut streams, mut sync) = fresh_parts(ThreadedWorkload::single(&p, 3, 2_000));
        let mut per_core = resume_zeroes(1);
        let mut observed = Vec::new();
        fast_forward(&mut streams, &mut sync, &mut per_core, 700, &mut |_, i| {
            observed.push(*i);
        });
        assert_eq!(&observed[..], &expected[..700]);
        assert_eq!(streams[0].next_inst(), Some(expected[700]));
    }

    #[test]
    fn fast_forward_respects_barriers_across_cores() {
        let p = catalog::parsec_profile("fluidanimate").unwrap();
        // Budget sized so every thread crosses fluidanimate's 25k-instruction
        // barrier period (with imbalance scaling) at least once.
        let (mut streams, mut sync) =
            fresh_parts(ThreadedWorkload::multithreaded(&p, 4, 11, 200_000));
        let mut per_core = resume_zeroes(4);
        let consumed = fast_forward(
            &mut streams,
            &mut sync,
            &mut per_core,
            160_000,
            &mut |_, _| {},
        );
        assert!(consumed > 0);
        // Barrier bookkeeping stayed consistent: some barriers completed, and
        // no thread is simultaneously running and blocked.
        assert!(sync.barriers_completed() > 0, "barriers must release");
        for (c, resume) in per_core.iter().enumerate() {
            if resume.done {
                assert!(sync.is_finished(c));
            }
            // Every core advanced: the barrier schedule forces rough
            // lock-step.
            assert!(
                resume.instructions > 0,
                "core {c} must make progress under barriers"
            );
        }
    }

    #[test]
    fn fast_forward_is_deterministic() {
        let p = catalog::parsec_profile("canneal").unwrap();
        let run = || {
            let (mut streams, mut sync) =
                fresh_parts(ThreadedWorkload::multithreaded(&p, 2, 5, 20_000));
            let mut per_core = resume_zeroes(2);
            let mut trace = Vec::new();
            fast_forward(
                &mut streams,
                &mut sync,
                &mut per_core,
                9_000,
                &mut |c, i| {
                    trace.push((c, i.seq, i.pc));
                },
            );
            (trace, per_core)
        };
        let (ta, pa) = run();
        let (tb, pb) = run();
        assert_eq!(ta, tb);
        assert_eq!(pa, pb);
    }

    #[test]
    fn zero_budget_and_all_done_are_no_ops() {
        let p = catalog::profile("gcc").unwrap();
        let (mut streams, mut sync) = fresh_parts(ThreadedWorkload::single(&p, 1, 100));
        let mut per_core = resume_zeroes(1);
        assert_eq!(
            fast_forward(&mut streams, &mut sync, &mut per_core, 0, &mut |_, _| {}),
            0
        );
        per_core[0].done = true;
        assert_eq!(
            fast_forward(&mut streams, &mut sync, &mut per_core, 50, &mut |_, _| {}),
            0
        );
    }
}
