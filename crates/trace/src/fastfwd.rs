//! Functional fast-forward of instruction streams (no timing).
//!
//! Sampled simulation spends most of its instructions *between* measured
//! units: the streams must advance (so the measured units see the right part
//! of the execution) and the long-lived microarchitectural state — branch
//! tables and the cache hierarchy — must stay warm, but no cycles need to be
//! accounted. [`fast_forward`] is that path: it drains instructions from the
//! per-core [`CheckpointStream`]s as fast as they can be generated, hands
//! every instruction to an observer callback (the sampling controller warms
//! branch predictors and the memory hierarchy there), and keeps the shared
//! [`SyncController`] consistent so barriers, locks and joins hold across
//! functional and timed execution alike.
//!
//! Everything here is driven by simulated state only — stream contents and
//! synchronization outcomes — so a fast-forwarded prefix is exactly as
//! deterministic as a timed one.

use crate::checkpoint::{CheckpointStream, CoreResume};
use crate::inst::{BranchInfo, DynInst};
use crate::stream::InstructionStream;
use crate::sync::{SyncController, SyncOp};
use crate::ThreadId;

/// Instructions a core consumes before the round-robin scheduler moves on to
/// the next core. Small enough that co-running cores interleave their shared
/// cache accesses at a realistic grain, large enough that scheduling cost
/// disappears next to stream generation.
const ROUND_ROBIN_CHUNK: u64 = 256;

/// Kind bit in [`InstBatch::kind`]: the instruction performs a memory access.
pub const KIND_MEM: u8 = 1 << 0;
/// Kind bit in [`InstBatch::kind`]: the memory access is a store.
pub const KIND_STORE: u8 = 1 << 1;
/// Kind bit in [`InstBatch::kind`]: the instruction is a control transfer
/// with a recorded outcome.
pub const KIND_BRANCH: u8 = 1 << 2;
/// Kind bit in [`InstBatch::kind`]: the instruction carries a
/// synchronization marker.
pub const KIND_SYNC: u8 = 1 << 3;

/// A fixed-capacity structure-of-arrays batch of decoded instructions.
///
/// Functional warming never needs a whole [`DynInst`]; each consumer walks a
/// *column* — program counters on the instruction side, addresses on the
/// data side, outcomes on the branch side. Decoding a batch at a time into
/// dense columns lets every consumer run a tight loop over contiguous memory
/// instead of re-dispatching per instruction, which is what makes the
/// warming hot path vectorizable.
///
/// The dense columns ([`pc`](Self::pc), [`kind`](Self::kind)) have one entry
/// per instruction in decode order; the memory and branch subsets carry
/// their batch position (`*_pos`, an index into the dense columns) so
/// consumers that need interleaving — the memory hierarchy's shared clocks —
/// can reconstruct exact per-instruction order.
#[derive(Debug, Clone)]
pub struct InstBatch {
    capacity: usize,
    /// Program counter of every instruction, in decode order.
    pub pc: Vec<u64>,
    /// Kind bits of every instruction ([`KIND_MEM`], [`KIND_STORE`],
    /// [`KIND_BRANCH`], [`KIND_SYNC`]).
    pub kind: Vec<u8>,
    /// Batch positions (indices into the dense columns) of the memory
    /// subset, ascending.
    pub mem_pos: Vec<u32>,
    /// Virtual-address column of the memory subset.
    pub mem_addr: Vec<u64>,
    /// Access-size column of the memory subset (bytes).
    pub mem_size: Vec<u8>,
    /// Store-flag column of the memory subset.
    pub mem_store: Vec<bool>,
    /// Batch positions of the branch subset, ascending.
    pub br_pos: Vec<u32>,
    /// Program-counter column of the branch subset.
    pub br_pc: Vec<u64>,
    /// Outcome column of the branch subset.
    pub br_info: Vec<BranchInfo>,
}

impl InstBatch {
    /// Creates an empty batch holding up to `capacity` instructions.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "batch capacity must be non-zero");
        InstBatch {
            capacity,
            pc: Vec::with_capacity(capacity),
            kind: Vec::with_capacity(capacity),
            mem_pos: Vec::with_capacity(capacity),
            mem_addr: Vec::with_capacity(capacity),
            mem_size: Vec::with_capacity(capacity),
            mem_store: Vec::with_capacity(capacity),
            br_pos: Vec::with_capacity(capacity),
            br_pc: Vec::with_capacity(capacity),
            br_info: Vec::with_capacity(capacity),
        }
    }

    /// Maximum number of instructions the batch holds.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of instructions currently in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pc.len()
    }

    /// Whether the batch holds no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pc.is_empty()
    }

    /// Whether the batch is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.pc.len() >= self.capacity
    }

    /// Empties the batch, retaining its allocations.
    pub fn clear(&mut self) {
        self.pc.clear();
        self.kind.clear();
        self.mem_pos.clear();
        self.mem_addr.clear();
        self.mem_size.clear();
        self.mem_store.clear();
        self.br_pos.clear();
        self.br_pc.clear();
        self.br_info.clear();
    }

    /// Appends one decoded instruction to the columns.
    pub fn push(&mut self, inst: &DynInst) {
        debug_assert!(!self.is_full(), "pushing into a full batch");
        let pos = self.pc.len() as u32;
        let mut kind = 0u8;
        if let Some(mem) = &inst.mem {
            kind |= KIND_MEM;
            if mem.is_store {
                kind |= KIND_STORE;
            }
            self.mem_pos.push(pos);
            self.mem_addr.push(mem.vaddr);
            self.mem_size.push(mem.size);
            self.mem_store.push(mem.is_store);
        }
        if let Some(info) = &inst.branch {
            kind |= KIND_BRANCH;
            self.br_pos.push(pos);
            self.br_pc.push(inst.pc);
            self.br_info.push(*info);
        }
        if inst.sync.is_some() {
            kind |= KIND_SYNC;
        }
        self.pc.push(inst.pc);
        self.kind.push(kind);
    }
}

/// Applies the synchronization side effect of one consumed instruction.
/// Shared by the scalar and batched fast-forward paths so they cannot
/// diverge.
fn apply_sync(sync: &mut SyncController, core: ThreadId, op: SyncOp) {
    match op {
        SyncOp::BarrierArrive { id } => {
            sync.arrive_barrier(core, id);
        }
        SyncOp::LockAcquire { id } => {
            let _ = sync.try_acquire(core, id);
        }
        SyncOp::LockRelease { id } => sync.release(core, id),
        SyncOp::ThreadSpawn => {}
        SyncOp::ThreadJoin { child } => {
            let _ = sync.join(core, child);
        }
    }
}

/// Advances every core's stream functionally by (up to) `budget` instructions
/// chip-wide, honoring synchronization.
///
/// Cores are advanced round-robin in deterministic order, each receiving an
/// equal share of the budget. A core stops early when it finishes its stream
/// or blocks on a synchronization condition; blocked cores are revisited as
/// long as any core still makes progress, so a barrier arrival by a later
/// core wakes an earlier one within the same call. When the remaining cores
/// are all blocked, finished, or out of budget, the call returns — the next
/// unit (functional or timed) picks up from a consistent state.
///
/// Every consumed instruction is passed to `observe` (with its core index)
/// before its synchronization side effects are applied, and is counted into
/// `per_core[core].instructions`. Cores that exhaust their stream are marked
/// done in `per_core` and finished in `sync`.
///
/// Returns the number of instructions consumed chip-wide.
///
/// # Panics
///
/// Panics if `streams` and `per_core` disagree on the number of cores.
pub fn fast_forward(
    streams: &mut [CheckpointStream],
    sync: &mut SyncController,
    per_core: &mut [CoreResume],
    budget: u64,
    observe: &mut dyn FnMut(ThreadId, &DynInst),
) -> u64 {
    assert_eq!(
        streams.len(),
        per_core.len(),
        "one resume entry per core stream is required"
    );
    let num_cores = streams.len();
    let live = per_core.iter().filter(|c| !c.done).count() as u64;
    if live == 0 || budget == 0 {
        return 0;
    }
    // Equal shares, remainder to the lowest-numbered live cores.
    let mut share: Vec<u64> = vec![0; num_cores];
    let (base, mut extra) = (budget / live, budget % live);
    for (core, resume) in per_core.iter().enumerate() {
        if !resume.done {
            share[core] = base + u64::from(extra > 0);
            extra = extra.saturating_sub(1);
        }
    }

    let mut consumed = 0u64;
    loop {
        let mut progressed = false;
        for core in 0..num_cores {
            let mut turn = ROUND_ROBIN_CHUNK.min(share[core]);
            while turn > 0 && !per_core[core].done && !sync.is_blocked(core) {
                let Some(inst) = streams[core].next_inst() else {
                    per_core[core].done = true;
                    sync.mark_finished(core);
                    break;
                };
                observe(core, &inst);
                if let Some(op) = inst.sync {
                    apply_sync(sync, core, op);
                }
                per_core[core].instructions += 1;
                share[core] -= 1;
                turn -= 1;
                consumed += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    consumed
}

/// Batched sibling of [`fast_forward`]: identical scheduling, consumption
/// and synchronization semantics, but consumed instructions are decoded into
/// the structure-of-arrays `batch` and handed to `observe_batch` a batch at
/// a time instead of one [`DynInst`] at a time.
///
/// The equivalence contract, relied on by the sampled-simulation warming
/// path and pinned by differential tests:
///
/// * The instruction sequence each core consumes — and therefore every
///   stream position, per-core count and synchronization outcome — is
///   byte-identical to [`fast_forward`] under the same budget.
/// * Batches never span a scheduling boundary: each flush contains
///   instructions of a single core, in consumption order.
/// * A batch is cut at (and includes) any instruction carrying a
///   synchronization marker; the flush happens *before* the marker's side
///   effects are applied, mirroring the scalar observe-then-sync order, so
///   a blocking acquire or barrier arrival is observed exactly once and
///   nothing past it is consumed prematurely.
/// * `batch` capacity 1 degenerates to the scalar path: every instruction
///   is flushed individually.
///
/// Returns the number of instructions consumed chip-wide.
///
/// # Panics
///
/// Panics if `streams` and `per_core` disagree on the number of cores.
pub fn fast_forward_batched(
    streams: &mut [CheckpointStream],
    sync: &mut SyncController,
    per_core: &mut [CoreResume],
    budget: u64,
    batch: &mut InstBatch,
    observe_batch: &mut dyn FnMut(ThreadId, &InstBatch),
) -> u64 {
    assert_eq!(
        streams.len(),
        per_core.len(),
        "one resume entry per core stream is required"
    );
    let num_cores = streams.len();
    let live = per_core.iter().filter(|c| !c.done).count() as u64;
    if live == 0 || budget == 0 {
        return 0;
    }
    // Equal shares, remainder to the lowest-numbered live cores — the same
    // split the scalar path computes.
    let mut share: Vec<u64> = vec![0; num_cores];
    let (base, mut extra) = (budget / live, budget % live);
    for (core, resume) in per_core.iter().enumerate() {
        if !resume.done {
            share[core] = base + u64::from(extra > 0);
            extra = extra.saturating_sub(1);
        }
    }

    let mut consumed = 0u64;
    loop {
        let mut progressed = false;
        for core in 0..num_cores {
            let mut turn = ROUND_ROBIN_CHUNK.min(share[core]);
            while turn > 0 && !per_core[core].done && !sync.is_blocked(core) {
                batch.clear();
                let mut pending_sync: Option<SyncOp> = None;
                let mut exhausted = false;
                while turn > 0 && !batch.is_full() {
                    let Some(inst) = streams[core].next_inst() else {
                        exhausted = true;
                        break;
                    };
                    batch.push(&inst);
                    per_core[core].instructions += 1;
                    share[core] -= 1;
                    turn -= 1;
                    consumed += 1;
                    progressed = true;
                    if let Some(op) = inst.sync {
                        // The marker may block this core or wake another;
                        // stop decoding here so nothing is consumed past a
                        // scheduling point the scalar path would stop at.
                        pending_sync = Some(op);
                        break;
                    }
                }
                if !batch.is_empty() {
                    observe_batch(core, batch);
                }
                if exhausted {
                    per_core[core].done = true;
                    sync.mark_finished(core);
                } else if let Some(op) = pending_sync {
                    apply_sync(sync, core, op);
                }
            }
        }
        if !progressed {
            break;
        }
    }
    consumed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::stream::SyntheticStream;
    use crate::threaded::ThreadedWorkload;

    fn fresh_parts(w: ThreadedWorkload) -> (Vec<CheckpointStream>, SyncController) {
        let (streams, sync) = w.into_parts();
        (
            streams.into_iter().map(CheckpointStream::fresh).collect(),
            sync,
        )
    }

    fn resume_zeroes(n: usize) -> Vec<CoreResume> {
        vec![
            CoreResume {
                time: 0,
                instructions: 0,
                done: false,
            };
            n
        ]
    }

    #[test]
    fn fast_forward_consumes_exactly_the_budget_single_core() {
        let p = catalog::profile("gcc").unwrap();
        let (mut streams, mut sync) = fresh_parts(ThreadedWorkload::single(&p, 7, 10_000));
        let mut per_core = resume_zeroes(1);
        let mut seen = 0u64;
        let consumed = fast_forward(
            &mut streams,
            &mut sync,
            &mut per_core,
            3_000,
            &mut |_, _| {
                seen += 1;
            },
        );
        assert_eq!(consumed, 3_000);
        assert_eq!(seen, 3_000);
        assert_eq!(per_core[0].instructions, 3_000);
        assert!(!per_core[0].done);
    }

    #[test]
    fn fast_forward_marks_exhausted_streams_done() {
        let p = catalog::profile("gzip").unwrap();
        let (mut streams, mut sync) = fresh_parts(ThreadedWorkload::single(&p, 7, 500));
        let mut per_core = resume_zeroes(1);
        let consumed = fast_forward(
            &mut streams,
            &mut sync,
            &mut per_core,
            2_000,
            &mut |_, _| {},
        );
        assert_eq!(consumed, 500);
        assert!(per_core[0].done);
        assert!(sync.is_finished(0));
        assert!(sync.all_finished());
    }

    #[test]
    fn fast_forward_position_matches_a_plain_stream() {
        // After fast-forwarding N instructions, the stream must continue with
        // exactly the instruction a plain stream yields at position N.
        let p = catalog::profile("mcf").unwrap();
        let mut reference = SyntheticStream::new(&p, 0, 3, 2_000);
        let mut expected = Vec::new();
        while let Some(i) = reference.next_inst() {
            expected.push(i);
        }
        let (mut streams, mut sync) = fresh_parts(ThreadedWorkload::single(&p, 3, 2_000));
        let mut per_core = resume_zeroes(1);
        let mut observed = Vec::new();
        fast_forward(&mut streams, &mut sync, &mut per_core, 700, &mut |_, i| {
            observed.push(*i);
        });
        assert_eq!(&observed[..], &expected[..700]);
        assert_eq!(streams[0].next_inst(), Some(expected[700]));
    }

    #[test]
    fn fast_forward_respects_barriers_across_cores() {
        let p = catalog::parsec_profile("fluidanimate").unwrap();
        // Budget sized so every thread crosses fluidanimate's 25k-instruction
        // barrier period (with imbalance scaling) at least once.
        let (mut streams, mut sync) =
            fresh_parts(ThreadedWorkload::multithreaded(&p, 4, 11, 200_000));
        let mut per_core = resume_zeroes(4);
        let consumed = fast_forward(
            &mut streams,
            &mut sync,
            &mut per_core,
            160_000,
            &mut |_, _| {},
        );
        assert!(consumed > 0);
        // Barrier bookkeeping stayed consistent: some barriers completed, and
        // no thread is simultaneously running and blocked.
        assert!(sync.barriers_completed() > 0, "barriers must release");
        for (c, resume) in per_core.iter().enumerate() {
            if resume.done {
                assert!(sync.is_finished(c));
            }
            // Every core advanced: the barrier schedule forces rough
            // lock-step.
            assert!(
                resume.instructions > 0,
                "core {c} must make progress under barriers"
            );
        }
    }

    #[test]
    fn fast_forward_is_deterministic() {
        let p = catalog::parsec_profile("canneal").unwrap();
        let run = || {
            let (mut streams, mut sync) =
                fresh_parts(ThreadedWorkload::multithreaded(&p, 2, 5, 20_000));
            let mut per_core = resume_zeroes(2);
            let mut trace = Vec::new();
            fast_forward(
                &mut streams,
                &mut sync,
                &mut per_core,
                9_000,
                &mut |c, i| {
                    trace.push((c, i.seq, i.pc));
                },
            );
            (trace, per_core)
        };
        let (ta, pa) = run();
        let (tb, pb) = run();
        assert_eq!(ta, tb);
        assert_eq!(pa, pb);
    }

    /// Runs scalar and batched fast-forward over identical fresh workloads
    /// and asserts the consumed trace, per-core bookkeeping, sync outcomes
    /// and stream positions all agree.
    fn assert_batched_matches_scalar(
        workload: impl Fn() -> ThreadedWorkload,
        budget: u64,
        batch_size: usize,
    ) {
        let (mut s_streams, mut s_sync) = fresh_parts(workload());
        let n = s_streams.len();
        let mut s_per_core = resume_zeroes(n);
        let mut s_trace: Vec<(ThreadId, u64)> = Vec::new();
        let s_consumed = fast_forward(
            &mut s_streams,
            &mut s_sync,
            &mut s_per_core,
            budget,
            &mut |c, i| s_trace.push((c, i.pc)),
        );

        let (mut b_streams, mut b_sync) = fresh_parts(workload());
        let mut b_per_core = resume_zeroes(n);
        let mut b_trace: Vec<(ThreadId, u64)> = Vec::new();
        let mut batch = InstBatch::with_capacity(batch_size);
        let b_consumed = fast_forward_batched(
            &mut b_streams,
            &mut b_sync,
            &mut b_per_core,
            budget,
            &mut batch,
            &mut |c, b| {
                assert!(!b.is_empty() && b.len() <= batch_size);
                assert_eq!(b.pc.len(), b.kind.len());
                assert_eq!(b.mem_pos.len(), b.mem_addr.len());
                assert_eq!(b.br_pos.len(), b.br_info.len());
                for &pc in &b.pc {
                    b_trace.push((c, pc));
                }
            },
        );

        assert_eq!(s_consumed, b_consumed, "batch={batch_size}");
        assert_eq!(s_trace, b_trace, "batch={batch_size}");
        assert_eq!(s_per_core, b_per_core, "batch={batch_size}");
        assert_eq!(
            s_sync.barriers_completed(),
            b_sync.barriers_completed(),
            "batch={batch_size}"
        );
        for core in 0..n {
            assert_eq!(s_sync.is_blocked(core), b_sync.is_blocked(core));
            assert_eq!(s_sync.is_finished(core), b_sync.is_finished(core));
            assert_eq!(
                s_streams[core].next_inst(),
                b_streams[core].next_inst(),
                "core {core} stream position diverged at batch={batch_size}"
            );
        }
    }

    #[test]
    fn batched_matches_scalar_single_core_at_every_batch_size() {
        let p = catalog::profile("mcf").unwrap();
        for batch_size in [1, 7, 64, 1024] {
            assert_batched_matches_scalar(
                || ThreadedWorkload::single(&p, 3, 5_000),
                3_200,
                batch_size,
            );
        }
    }

    #[test]
    fn batched_matches_scalar_across_barriers_and_locks() {
        let fluid = catalog::parsec_profile("fluidanimate").unwrap();
        let canneal = catalog::parsec_profile("canneal").unwrap();
        for batch_size in [1, 7, 64] {
            assert_batched_matches_scalar(
                || ThreadedWorkload::multithreaded(&fluid, 4, 11, 200_000),
                160_000,
                batch_size,
            );
            assert_batched_matches_scalar(
                || ThreadedWorkload::multithreaded(&canneal, 2, 5, 20_000),
                9_000,
                batch_size,
            );
        }
    }

    #[test]
    fn batched_runs_streams_to_exhaustion() {
        let p = catalog::profile("gzip").unwrap();
        let (mut streams, mut sync) = fresh_parts(ThreadedWorkload::single(&p, 7, 500));
        let mut per_core = resume_zeroes(1);
        let mut batch = InstBatch::with_capacity(64);
        let mut seen = 0u64;
        let consumed = fast_forward_batched(
            &mut streams,
            &mut sync,
            &mut per_core,
            2_000,
            &mut batch,
            &mut |_, b| seen += b.len() as u64,
        );
        assert_eq!(consumed, 500);
        assert_eq!(seen, 500);
        assert!(per_core[0].done);
        assert!(sync.all_finished());
    }

    #[test]
    fn batch_columns_describe_the_decoded_instructions() {
        let p = catalog::profile("mcf").unwrap();
        let mut reference = SyntheticStream::new(&p, 0, 3, 2_000);
        let mut expected = Vec::new();
        while let Some(i) = reference.next_inst() {
            expected.push(i);
        }
        let (mut streams, mut sync) = fresh_parts(ThreadedWorkload::single(&p, 3, 2_000));
        let mut per_core = resume_zeroes(1);
        let mut batch = InstBatch::with_capacity(32);
        let mut cursor = 0usize;
        fast_forward_batched(
            &mut streams,
            &mut sync,
            &mut per_core,
            700,
            &mut batch,
            &mut |_, b| {
                let (mut m, mut r) = (0usize, 0usize);
                for (pos, (&pc, &kind)) in b.pc.iter().zip(&b.kind).enumerate() {
                    let inst = &expected[cursor + pos];
                    assert_eq!(pc, inst.pc);
                    assert_eq!(kind & super::KIND_MEM != 0, inst.mem.is_some());
                    assert_eq!(kind & super::KIND_BRANCH != 0, inst.branch.is_some());
                    assert_eq!(kind & super::KIND_SYNC != 0, inst.sync.is_some());
                    if let Some(mem) = inst.mem {
                        assert_eq!(b.mem_pos[m] as usize, pos);
                        assert_eq!(b.mem_addr[m], mem.vaddr);
                        assert_eq!(b.mem_size[m], mem.size);
                        assert_eq!(b.mem_store[m], mem.is_store);
                        assert_eq!(kind & super::KIND_STORE != 0, mem.is_store);
                        m += 1;
                    }
                    if let Some(info) = inst.branch {
                        assert_eq!(b.br_pos[r] as usize, pos);
                        assert_eq!(b.br_pc[r], inst.pc);
                        assert_eq!(b.br_info[r], info);
                        r += 1;
                    }
                }
                assert_eq!(m, b.mem_pos.len());
                assert_eq!(r, b.br_pos.len());
                cursor += b.len();
            },
        );
        assert_eq!(cursor, 700);
    }

    #[test]
    fn zero_budget_and_all_done_are_no_ops() {
        let p = catalog::profile("gcc").unwrap();
        let (mut streams, mut sync) = fresh_parts(ThreadedWorkload::single(&p, 1, 100));
        let mut per_core = resume_zeroes(1);
        assert_eq!(
            fast_forward(&mut streams, &mut sync, &mut per_core, 0, &mut |_, _| {}),
            0
        );
        per_core[0].done = true;
        assert_eq!(
            fast_forward(&mut streams, &mut sync, &mut per_core, 50, &mut |_, _| {}),
            0
        );
    }
}
