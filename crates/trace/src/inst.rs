//! Dynamic instruction representation of the synthetic ISA.
//!
//! The timing models never interpret instruction semantics; they only need the
//! information interval analysis and detailed out-of-order simulation consume:
//! operation class (for execution latency and functional-unit selection),
//! register dependences, memory addresses, branch outcomes/targets, whether the
//! instruction serializes the pipeline, and synchronization markers for
//! multi-threaded runs.

use crate::sync::SyncOp;
use serde::{Deserialize, Serialize};

/// Architectural register identifier.
///
/// Registers `0..32` are integer registers, `32..64` floating-point registers.
/// The distinction only influences which functional unit class consumes a
/// value; the dependence machinery treats them uniformly.
pub type RegId = u16;

/// Functional class of an instruction.
///
/// The classes mirror the functional units and latencies of Table 1 of the
/// paper (load 2 cycles, multiply 3, floating point 4, divide 20; simple
/// integer ALU operations are single-cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Single-cycle integer ALU operation (add, logical, shift, compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (long latency, unpipelined).
    IntDiv,
    /// Floating-point add/sub/compare/convert.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root (long latency).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Control-transfer instruction (conditional or unconditional).
    Branch,
    /// Pipeline-serializing instruction (memory barrier, system call entry,
    /// TLB maintenance). The core must drain the window before executing it.
    Serialize,
}

impl OpClass {
    /// Base execution latency in cycles of this operation class, matching the
    /// functional-unit latencies of Table 1 of the paper. Loads report the
    /// address-generation + L1-hit latency; cache misses add on top of this.
    #[must_use]
    pub fn base_latency(self) -> u64 {
        match self {
            OpClass::IntAlu | OpClass::Branch | OpClass::Serialize | OpClass::Store => 1,
            OpClass::Load => 2,
            OpClass::IntMul => 3,
            OpClass::FpAlu | OpClass::FpMul => 4,
            OpClass::IntDiv | OpClass::FpDiv => 20,
        }
    }

    /// Whether the class executes on the integer ALU/multiplier cluster.
    #[must_use]
    pub fn is_integer(self) -> bool {
        matches!(
            self,
            OpClass::IntAlu
                | OpClass::IntMul
                | OpClass::IntDiv
                | OpClass::Branch
                | OpClass::Serialize
        )
    }

    /// Whether the class executes on the floating-point cluster.
    #[must_use]
    pub fn is_float(self) -> bool {
        matches!(self, OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv)
    }

    /// Whether the class executes on the load/store cluster.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }
}

/// Sub-class of a control-transfer instruction, used by the branch-predictor
/// front-end (BTB vs. return-address-stack vs. direction prediction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchClass {
    /// Conditional direct branch.
    Conditional,
    /// Unconditional direct branch or jump.
    UnconditionalDirect,
    /// Indirect jump through a register (switch tables, virtual calls).
    Indirect,
    /// Direct function call (pushes a return address).
    Call,
    /// Function return (pops the return-address stack).
    Return,
}

/// Architectural outcome of a control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Kind of control transfer.
    pub class: BranchClass,
    /// Whether the branch is architecturally taken.
    pub taken: bool,
    /// Architectural target of the branch when taken.
    pub target: u64,
    /// Fall-through address (the next sequential PC).
    pub fallthrough: u64,
}

impl BranchInfo {
    /// The next architectural PC after this branch.
    #[must_use]
    pub fn next_pc(&self) -> u64 {
        if self.taken {
            self.target
        } else {
            self.fallthrough
        }
    }
}

/// Architectural memory access performed by a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Virtual byte address of the access.
    pub vaddr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
    /// `true` when the address falls in a region shared between threads
    /// (multi-threaded workloads only); used by workload statistics, the
    /// coherence behaviour itself emerges from the memory-hierarchy simulator.
    pub shared: bool,
}

/// One dynamic instruction of the synthetic instruction stream.
///
/// `Copy`: every field is plain data (~90 bytes), so the timing models move
/// instructions through window/ROB stages with flat copies — there is no
/// heap behind a `DynInst`, and nothing on the per-instruction hot path ever
/// needs to allocate or `clone` one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynInst {
    /// Per-thread dynamic sequence number (0-based, monotonically increasing).
    pub seq: u64,
    /// Program counter of the instruction.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Source registers (up to two).
    pub srcs: [Option<RegId>; 2],
    /// Destination register, if any.
    pub dst: Option<RegId>,
    /// Memory access, for loads and stores.
    pub mem: Option<MemAccess>,
    /// Branch outcome, for control-transfer instructions.
    pub branch: Option<BranchInfo>,
    /// Synchronization operation attached to this instruction (multi-threaded
    /// workloads only). The instruction itself is typically a [`OpClass::Load`]
    /// / [`OpClass::Store`] (lock word access) or [`OpClass::Serialize`]
    /// (barrier).
    pub sync: Option<SyncOp>,
}

impl DynInst {
    /// Creates a plain single-cycle ALU instruction; primarily useful in tests.
    #[must_use]
    pub fn nop(seq: u64, pc: u64) -> Self {
        DynInst {
            seq,
            pc,
            op: OpClass::IntAlu,
            srcs: [None, None],
            dst: None,
            mem: None,
            branch: None,
            sync: None,
        }
    }

    /// Whether the instruction is a load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        self.op == OpClass::Load
    }

    /// Whether the instruction is a store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        self.op == OpClass::Store
    }

    /// Whether the instruction is a control-transfer instruction.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        self.op == OpClass::Branch
    }

    /// Whether the instruction serializes the pipeline (window drain).
    #[must_use]
    pub fn is_serializing(&self) -> bool {
        self.op == OpClass::Serialize
    }

    /// Whether the instruction carries a synchronization marker.
    #[must_use]
    pub fn is_sync(&self) -> bool {
        self.sync.is_some()
    }

    /// Execution latency of the instruction excluding memory-hierarchy misses.
    #[must_use]
    pub fn exec_latency(&self) -> u64 {
        self.op.base_latency()
    }

    /// Iterator over the valid source registers.
    pub fn src_regs(&self) -> impl Iterator<Item = RegId> + '_ {
        self.srcs.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_latencies_match_table1() {
        assert_eq!(OpClass::IntAlu.base_latency(), 1);
        assert_eq!(OpClass::Load.base_latency(), 2);
        assert_eq!(OpClass::IntMul.base_latency(), 3);
        assert_eq!(OpClass::FpAlu.base_latency(), 4);
        assert_eq!(OpClass::IntDiv.base_latency(), 20);
        assert_eq!(OpClass::FpDiv.base_latency(), 20);
    }

    #[test]
    fn op_class_cluster_partition() {
        let all = [
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::IntDiv,
            OpClass::FpAlu,
            OpClass::FpMul,
            OpClass::FpDiv,
            OpClass::Load,
            OpClass::Store,
            OpClass::Branch,
            OpClass::Serialize,
        ];
        for op in all {
            let clusters = usize::from(op.is_integer())
                + usize::from(op.is_float())
                + usize::from(op.is_memory());
            assert_eq!(clusters, 1, "{op:?} must belong to exactly one cluster");
        }
    }

    #[test]
    fn branch_next_pc_follows_outcome() {
        let taken = BranchInfo {
            class: BranchClass::Conditional,
            taken: true,
            target: 0x4000,
            fallthrough: 0x1004,
        };
        assert_eq!(taken.next_pc(), 0x4000);
        let not_taken = BranchInfo {
            taken: false,
            ..taken
        };
        assert_eq!(not_taken.next_pc(), 0x1004);
    }

    #[test]
    fn nop_is_plain_alu() {
        let i = DynInst::nop(7, 0x100);
        assert_eq!(i.seq, 7);
        assert!(!i.is_load() && !i.is_store() && !i.is_branch() && !i.is_serializing());
        assert_eq!(i.exec_latency(), 1);
        assert_eq!(i.src_regs().count(), 0);
    }

    #[test]
    fn src_regs_iterates_only_valid() {
        let mut i = DynInst::nop(0, 0);
        i.srcs = [Some(3), None];
        assert_eq!(i.src_regs().collect::<Vec<_>>(), vec![3]);
        i.srcs = [Some(3), Some(9)];
        assert_eq!(i.src_regs().collect::<Vec<_>>(), vec![3, 9]);
    }
}
