//! Functional-state checkpointing of instruction streams.
//!
//! A model swap in hybrid simulation happens while the outgoing timing model
//! still holds fetched-but-unretired instructions in its window/ROB. Those
//! instructions have already been consumed from the underlying deterministic
//! generator, so the incoming model cannot simply clone the generator — it
//! would skip them. [`CheckpointStream`] solves this: it replays the
//! unretired instructions first (in program order) and then continues from a
//! clone of the generator, so the incoming model observes exactly the
//! suffix of the dynamic instruction stream that the outgoing model had not
//! yet retired.

use std::collections::VecDeque;

use crate::inst::DynInst;
use crate::stream::{InstructionStream, SyntheticStream};

/// Per-core resume point handed from an outgoing timing model to an incoming
/// one: where the core's clock and retired-instruction counter stood when the
/// checkpoint was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreResume {
    /// The core's simulated time at the checkpoint (absolute cycles).
    pub time: u64,
    /// Instructions the core had retired at the checkpoint.
    pub instructions: u64,
    /// Whether the core had already finished its stream.
    pub done: bool,
}

/// An instruction stream that replays a checkpointed prefix before continuing
/// from a cloned [`SyntheticStream`] generator.
///
/// A fresh stream (empty prefix) behaves exactly like the wrapped generator,
/// which is why every model — not just hybrid runs — executes on
/// `CheckpointStream`s: the plain entry points and the hybrid swap path then
/// share one code path and one determinism argument.
#[derive(Debug, Clone)]
pub struct CheckpointStream {
    replay: VecDeque<DynInst>,
    inner: SyntheticStream,
}

impl CheckpointStream {
    /// Wraps a generator with no replay prefix (a run from the beginning).
    #[must_use]
    pub fn fresh(inner: SyntheticStream) -> Self {
        CheckpointStream {
            replay: VecDeque::new(),
            inner,
        }
    }

    /// Builds the stream an incoming model resumes from: `unretired` are the
    /// instructions the outgoing model had fetched but not retired (oldest
    /// first), and `current` is the outgoing model's stream as it stands —
    /// its own un-replayed prefix (if any) followed by the generator.
    #[must_use]
    pub fn resuming(unretired: Vec<DynInst>, current: &CheckpointStream) -> Self {
        let mut replay: VecDeque<DynInst> = unretired.into();
        replay.extend(current.replay.iter().copied());
        CheckpointStream {
            replay,
            inner: current.inner.clone(),
        }
    }

    /// Owned variant of [`CheckpointStream::resuming`]: prepends `unretired`
    /// to a stream the caller already owns, without cloning the generator.
    /// This is the clone-free path a sampled run takes when it deconstructs
    /// a timing model it owns at a functional-unit boundary.
    #[must_use]
    pub fn resuming_owned(unretired: Vec<DynInst>, mut current: CheckpointStream) -> Self {
        for inst in unretired.into_iter().rev() {
            current.replay.push_front(inst);
        }
        current
    }

    /// Number of instructions queued for replay before the generator
    /// continues.
    #[must_use]
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }
}

impl InstructionStream for CheckpointStream {
    fn next_inst(&mut self) -> Option<DynInst> {
        if let Some(inst) = self.replay.pop_front() {
            return Some(inst);
        }
        self.inner.next_inst()
    }

    fn remaining_hint(&self) -> Option<u64> {
        self.inner
            .remaining_hint()
            .map(|r| r + self.replay.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn collect(s: &mut impl InstructionStream) -> Vec<DynInst> {
        let mut v = Vec::new();
        while let Some(i) = s.next_inst() {
            v.push(i);
        }
        v
    }

    #[test]
    fn fresh_stream_matches_the_generator() {
        let p = catalog::profile("gcc").unwrap();
        let mut plain = SyntheticStream::new(&p, 0, 9, 2_000);
        let mut wrapped = CheckpointStream::fresh(SyntheticStream::new(&p, 0, 9, 2_000));
        assert_eq!(collect(&mut plain), collect(&mut wrapped));
    }

    #[test]
    fn resuming_replays_unretired_then_continues() {
        let p = catalog::profile("mcf").unwrap();
        let reference = collect(&mut CheckpointStream::fresh(SyntheticStream::new(
            &p, 0, 3, 1_000,
        )));

        // Consume 100 instructions; pretend the last 40 were fetched but not
        // retired when the checkpoint was taken.
        let mut s = CheckpointStream::fresh(SyntheticStream::new(&p, 0, 3, 1_000));
        let mut consumed = Vec::new();
        for _ in 0..100 {
            consumed.push(s.next_inst().unwrap());
        }
        let unretired = consumed[60..].to_vec();
        let mut resumed = CheckpointStream::resuming(unretired, &s);
        assert_eq!(resumed.replay_len(), 40);
        assert_eq!(resumed.remaining_hint(), Some(940));
        let tail = collect(&mut resumed);
        assert_eq!(tail.len(), 940);
        assert_eq!(&reference[60..], &tail[..]);
    }

    #[test]
    fn resuming_owned_matches_the_cloning_path() {
        let p = catalog::profile("gcc").unwrap();
        let mut s = CheckpointStream::fresh(SyntheticStream::new(&p, 0, 9, 800));
        let mut consumed = Vec::new();
        for _ in 0..120 {
            consumed.push(s.next_inst().unwrap());
        }
        let unretired = consumed[90..].to_vec();
        let cloned = CheckpointStream::resuming(unretired.clone(), &s);
        let owned = CheckpointStream::resuming_owned(unretired, s);
        assert_eq!(collect(&mut { cloned }), collect(&mut { owned }));
    }

    #[test]
    fn resuming_from_a_resumed_stream_stacks_prefixes() {
        let p = catalog::profile("gzip").unwrap();
        let reference = collect(&mut CheckpointStream::fresh(SyntheticStream::new(
            &p, 0, 5, 500,
        )));
        let mut s = CheckpointStream::fresh(SyntheticStream::new(&p, 0, 5, 500));
        let mut consumed = Vec::new();
        for _ in 0..50 {
            consumed.push(s.next_inst().unwrap());
        }
        // First swap: 10 unretired.
        let mut second = CheckpointStream::resuming(consumed[40..].to_vec(), &s);
        // Drain 3 of the replayed instructions, then swap again with 2 more
        // unretired in front of the remaining 7.
        let mut replayed = Vec::new();
        for _ in 0..3 {
            replayed.push(second.next_inst().unwrap());
        }
        let third = CheckpointStream::resuming(replayed[1..].to_vec(), &second);
        let tail = collect(&mut { third });
        assert_eq!(&reference[41..], &tail[..]);
    }
}
