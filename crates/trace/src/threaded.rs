//! Multi-threaded / multi-programmed workload construction.
//!
//! A [`ThreadedWorkload`] bundles the per-core instruction streams and the
//! shared [`SyncController`] that the timing simulators use to model
//! inter-thread synchronization. Two organizations are supported, matching the
//! paper's evaluation:
//!
//! * **Multi-threaded** (PARSEC, Figure 7): one program, `n` threads, shared
//!   data and synchronization.
//! * **Multi-programmed** (SPEC, Figure 6): `n` independent copies of
//!   single-threaded programs, one per core, no synchronization, contention
//!   only through the shared memory hierarchy.

use crate::profile::WorkloadProfile;
use crate::stream::SyntheticStream;
use crate::sync::SyncController;
use crate::ThreadId;

/// A complete workload for a multi-core simulation: one instruction stream per
/// core plus shared synchronization state.
#[derive(Debug, Clone)]
pub struct ThreadedWorkload {
    /// Human-readable name (benchmark name, possibly with a copy count).
    name: String,
    streams: Vec<SyntheticStream>,
    sync: SyncController,
    multithreaded: bool,
}

impl ThreadedWorkload {
    /// Builds an `n`-thread run of one multi-threaded program (PARSEC-like).
    ///
    /// `length` is the *total* dynamic instruction count of the program; it is
    /// divided evenly over the threads so that, as in the paper, the same
    /// program run on more cores executes (roughly) the same total work.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `length == 0`.
    #[must_use]
    pub fn multithreaded(
        profile: &WorkloadProfile,
        threads: usize,
        seed: u64,
        length: u64,
    ) -> Self {
        assert!(threads > 0, "a workload needs at least one thread");
        assert!(length > 0, "workload length must be non-zero");
        // Load imbalance: the total work is divided unevenly, so the slowest
        // thread bounds the parallel execution time (this is what makes
        // `vips`-like workloads scale poorly in Figure 7).
        let imbalance = profile.sync.imbalance.max(0.0);
        let weights: Vec<f64> = (0..threads)
            .map(|t| {
                if threads > 1 {
                    1.0 + imbalance * t as f64 / (threads - 1) as f64
                } else {
                    1.0
                }
            })
            .collect();
        let total_weight: f64 = weights.iter().sum();
        let mut lengths: Vec<u64> = weights
            .iter()
            .map(|w| ((length as f64 * w / total_weight).round() as u64).max(1))
            .collect();
        // Adjust the last thread so the per-thread lengths add up to exactly
        // the requested total.
        let assigned: u64 = lengths.iter().take(threads - 1).sum();
        lengths[threads - 1] = length.saturating_sub(assigned).max(1);
        let streams = (0..threads)
            .map(|t| SyntheticStream::with_threads(profile, t, threads, seed, lengths[t]))
            .collect();
        ThreadedWorkload {
            name: format!("{}.{}t", profile.name, threads),
            streams,
            sync: SyncController::new(threads),
            multithreaded: true,
        }
    }

    /// Builds a homogeneous multi-programmed workload: `copies` independent
    /// instances of the same single-threaded program, one per core, each
    /// executing `length_per_copy` instructions (Figure 6 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `copies == 0` or `length_per_copy == 0`.
    #[must_use]
    pub fn multiprogram_homogeneous(
        profile: &WorkloadProfile,
        copies: usize,
        seed: u64,
        length_per_copy: u64,
    ) -> Self {
        assert!(copies > 0, "a workload needs at least one program copy");
        assert!(length_per_copy > 0, "workload length must be non-zero");
        let streams = (0..copies)
            .map(|t| {
                // Every copy is the same execution relocated into a private
                // address space, so per-copy slowdown relative to the solo run
                // measures shared-resource contention and nothing else (the
                // assumption behind the Figure 6 STP/ANTT baselines).
                SyntheticStream::program_copy(profile, t, seed, length_per_copy)
            })
            .collect();
        ThreadedWorkload {
            name: format!("{}x{}", profile.name, copies),
            streams,
            sync: SyncController::new(copies),
            multithreaded: false,
        }
    }

    /// Builds a heterogeneous multi-programmed workload: one single-threaded
    /// program per core, potentially all different.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or `length_per_copy == 0`.
    #[must_use]
    pub fn multiprogram(profiles: &[WorkloadProfile], seed: u64, length_per_copy: u64) -> Self {
        assert!(
            !profiles.is_empty(),
            "a workload needs at least one program"
        );
        assert!(length_per_copy > 0, "workload length must be non-zero");
        // Distinct programs get distinct seeds; the copy index keeps their
        // private data regions disjoint.
        let streams = profiles
            .iter()
            .enumerate()
            .map(|(t, p)| {
                SyntheticStream::program_copy(
                    p,
                    t,
                    seed.wrapping_add(t as u64 * 104_729),
                    length_per_copy,
                )
            })
            .collect();
        let name = profiles
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        ThreadedWorkload {
            name,
            streams,
            sync: SyncController::new(profiles.len()),
            multithreaded: false,
        }
    }

    /// Builds a single-threaded, single-core workload.
    ///
    /// # Panics
    ///
    /// Panics if `length == 0`.
    #[must_use]
    pub fn single(profile: &WorkloadProfile, seed: u64, length: u64) -> Self {
        Self::multithreaded(
            &{
                // A single-threaded run of a PARSEC profile still runs without
                // synchronization (there is nothing to synchronize with).
                profile.clone()
            },
            1,
            seed,
            length,
        )
    }

    /// Workload name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cores (= streams) in the workload.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.streams.len()
    }

    /// Whether this is a single multi-threaded program (as opposed to
    /// independent co-scheduled programs).
    #[must_use]
    pub fn is_multithreaded(&self) -> bool {
        self.multithreaded
    }

    /// Total number of instructions across all streams.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.streams
            .iter()
            .map(SyntheticStream::total_instructions)
            .sum()
    }

    /// Instructions of the stream assigned to one core.
    #[must_use]
    pub fn instructions_on_core(&self, core: ThreadId) -> u64 {
        self.streams[core].total_instructions()
    }

    /// Splits the workload into its parts for consumption by a simulator:
    /// the per-core instruction streams and the shared synchronization state.
    #[must_use]
    pub fn into_parts(self) -> (Vec<SyntheticStream>, SyncController) {
        (self.streams, self.sync)
    }

    /// Borrow the per-core streams.
    #[must_use]
    pub fn streams(&self) -> &[SyntheticStream] {
        &self.streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::stream::InstructionStream;

    #[test]
    fn multithreaded_divides_work_across_threads() {
        let p = catalog::parsec_profile("blackscholes").unwrap();
        let w = ThreadedWorkload::multithreaded(&p, 4, 1, 40_000);
        assert_eq!(w.num_cores(), 4);
        assert!(w.is_multithreaded());
        assert_eq!(w.total_instructions(), 40_000);
        for c in 0..4 {
            let per = w.instructions_on_core(c);
            assert!(
                (9_000..=11_000).contains(&per),
                "blackscholes is nearly balanced, got {per}"
            );
        }
    }

    #[test]
    fn imbalanced_profile_gives_unequal_thread_lengths() {
        let p = catalog::parsec_profile("vips").unwrap();
        let w = ThreadedWorkload::multithreaded(&p, 4, 1, 40_000);
        let first = w.instructions_on_core(0);
        let last = w.instructions_on_core(3);
        assert!(
            last as f64 > 1.5 * first as f64,
            "vips thread 3 ({last}) must do much more work than thread 0 ({first})"
        );
    }

    #[test]
    fn multiprogram_runs_full_length_per_copy() {
        let p = catalog::spec_profile("mcf").unwrap();
        let w = ThreadedWorkload::multiprogram_homogeneous(&p, 4, 1, 10_000);
        assert_eq!(w.num_cores(), 4);
        assert!(!w.is_multithreaded());
        assert_eq!(w.total_instructions(), 40_000);
    }

    #[test]
    fn heterogeneous_multiprogram_names_and_sizes() {
        let profiles = vec![
            catalog::spec_profile("gcc").unwrap(),
            catalog::spec_profile("mcf").unwrap(),
        ];
        let w = ThreadedWorkload::multiprogram(&profiles, 5, 2_000);
        assert_eq!(w.name(), "gcc+mcf");
        assert_eq!(w.num_cores(), 2);
        assert_eq!(w.total_instructions(), 4_000);
    }

    #[test]
    fn single_has_one_core_and_no_sync_markers() {
        let p = catalog::parsec_profile("fluidanimate").unwrap();
        let w = ThreadedWorkload::single(&p, 3, 5_000);
        assert_eq!(w.num_cores(), 1);
        let (mut streams, sync) = w.into_parts();
        assert_eq!(sync.num_threads(), 1);
        let mut count = 0;
        while let Some(i) = streams[0].next_inst() {
            assert!(i.sync.is_none(), "single-threaded run must not synchronize");
            count += 1;
        }
        assert_eq!(count, 5_000);
    }

    #[test]
    fn multiprogram_copies_do_not_share_addresses() {
        let p = catalog::spec_profile("art").unwrap();
        let w = ThreadedWorkload::multiprogram_homogeneous(&p, 2, 9, 3_000);
        let (mut streams, _) = w.into_parts();
        let addrs = |s: &mut SyntheticStream| {
            let mut v = Vec::new();
            while let Some(i) = s.next_inst() {
                if let Some(m) = i.mem {
                    v.push(m.vaddr);
                }
            }
            v
        };
        let a = addrs(&mut streams[0]);
        let b = addrs(&mut streams[1]);
        assert!(a.iter().max().unwrap() < b.iter().min().unwrap());
    }
}
