//! Benchmark catalog: synthetic profiles standing in for SPEC CPU2000 and
//! PARSEC.
//!
//! The paper evaluates 26 SPEC CPU2000 benchmarks (user-level, single-threaded)
//! and 9 PARSEC benchmarks (multi-threaded, full-system). The real binaries and
//! inputs cannot be shipped, so this module provides one [`WorkloadProfile`]
//! per benchmark whose statistical parameters reproduce the qualitative
//! behaviour the paper's evaluation depends on:
//!
//! * `mcf`, `art`: strongly memory-bound, pointer chasing, large footprints —
//!   they lose throughput when several copies share the L2 (Figure 6).
//! * `swim`, `lucas`, `equake`, `applu`: streaming floating-point codes with
//!   large footprints and high bandwidth demand.
//! * `gcc`, `crafty`, `vortex`, `perlbmk`: branchy integer codes with large
//!   instruction footprints (I-cache misses matter).
//! * `vpr`, `twolf`, `parser`: hard-to-predict branches (misprediction-bound).
//! * `vips`: load-imbalanced, does not scale with core count (Figure 7).
//! * `fluidanimate`: synchronization-heavy, fine-grained locks.
//! * `canneal`: large shared working set, cache-capacity sensitive (Figure 8).

use crate::profile::{
    BranchBehavior, MemoryBehavior, MixWeights, Suite, SyncBehavior, WorkloadProfile,
};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

/// Names of the 26 SPEC CPU2000 benchmarks used in the paper, in the order of
/// Figures 4, 5 and 9 (integer benchmarks first, then floating point).
pub const SPEC_CPU2000: [&str; 26] = [
    "bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf", "parser", "perlbmk", "twolf", "vortex",
    "vpr", "ammp", "applu", "apsi", "art", "equake", "facerec", "fma3d", "galgel", "lucas", "mesa",
    "mgrid", "sixtrack", "swim", "wupwise",
];

/// Names of the 9 PARSEC benchmarks used in the paper (Figures 7, 8 and 10).
pub const PARSEC: [&str; 9] = [
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "fluidanimate",
    "streamcluster",
    "swaptions",
    "vips",
    "x264",
];

/// The five SPEC benchmarks used for the homogeneous multi-program workloads
/// of Figure 6.
pub const FIG6_BENCHMARKS: [&str; 5] = ["gcc", "mcf", "twolf", "art", "swim"];

/// Returns the profile of a SPEC CPU2000 benchmark, or `None` for an unknown
/// name.
#[must_use]
pub fn spec_profile(name: &str) -> Option<WorkloadProfile> {
    if !SPEC_CPU2000.contains(&name) {
        return None;
    }
    Some(build_spec(name))
}

/// Returns the profile of a PARSEC benchmark, or `None` for an unknown name.
#[must_use]
pub fn parsec_profile(name: &str) -> Option<WorkloadProfile> {
    if !PARSEC.contains(&name) {
        return None;
    }
    Some(build_parsec(name))
}

/// Returns the profile for any benchmark in either suite.
#[must_use]
pub fn profile(name: &str) -> Option<WorkloadProfile> {
    spec_profile(name).or_else(|| parsec_profile(name))
}

/// All SPEC CPU2000 profiles, in catalog order.
#[must_use]
pub fn all_spec_profiles() -> Vec<WorkloadProfile> {
    SPEC_CPU2000.iter().map(|n| build_spec(n)).collect()
}

/// All PARSEC profiles, in catalog order.
#[must_use]
pub fn all_parsec_profiles() -> Vec<WorkloadProfile> {
    PARSEC.iter().map(|n| build_parsec(n)).collect()
}

/// Knobs from which a benchmark personality is constructed.
struct Knobs {
    suite: Suite,
    /// Instruction mix baseline: integer or floating point.
    float_mix: bool,
    /// Memory intensity in [0, 1]: 0 = L1-resident, 1 = DRAM-bound.
    mem_intensity: f64,
    /// Streaming-ness of the cold accesses in [0, 1].
    streaming: f64,
    /// Pointer-chasing fraction of loads.
    pointer_chase: f64,
    /// Branch difficulty in [0, 1]: 0 = fully predictable, 1 = very irregular.
    branchiness: f64,
    /// Instruction footprint in bytes.
    code_footprint: u64,
    /// Mean register dependence distance (ILP).
    dep_distance: f64,
    /// Cold footprint in bytes.
    cold_bytes: u64,
    /// Warm (L2) footprint in bytes.
    warm_bytes: u64,
}

impl Knobs {
    fn into_profile(self, name: &str) -> WorkloadProfile {
        let mut mix = if self.float_mix {
            MixWeights::float_default()
        } else {
            MixWeights::integer_default()
        };
        // Memory-intense codes execute relatively more loads.
        mix.load = (mix.load + 0.10 * self.mem_intensity).min(0.45);

        // Cold (DRAM-footprint) and warm (L2-footprint) access fractions grow
        // with memory intensity; even strongly memory-bound codes such as mcf
        // keep the bulk of their accesses in the L1-resident hot set, which is
        // what yields realistic miss-per-kilo-instruction rates.
        let p_cold = 0.002 + 0.035 * self.mem_intensity * self.mem_intensity;
        let p_warm = 0.010 + 0.110 * self.mem_intensity;
        let p_hot = 1.0 - p_warm - p_cold;
        let memory = MemoryBehavior {
            hot_bytes: 16 * KIB,
            warm_bytes: self.warm_bytes,
            cold_bytes: self.cold_bytes,
            p_hot,
            p_warm,
            p_stream: self.streaming,
            pointer_chase: self.pointer_chase,
            shared_frac: 0.0,
            shared_write_frac: 0.0,
            shared_bytes: 0,
        };

        let branches = BranchBehavior {
            static_branches: (192.0 + 3900.0 * self.branchiness) as u32,
            biased_frac: 0.72 - 0.22 * self.branchiness,
            bias: 0.985 - 0.04 * self.branchiness,
            loop_frac: 0.25 - 0.05 * self.branchiness,
            loop_trip: if self.float_mix { 48 } else { 12 },
            random_taken: 0.42,
            call_frac: 0.02 + 0.04 * self.branchiness,
            indirect_frac: 0.002 + 0.012 * self.branchiness,
            indirect_targets: 2 + (6.0 * self.branchiness) as u32,
        };

        WorkloadProfile {
            name: name.to_string(),
            suite: self.suite,
            mix,
            memory,
            branches,
            sync: SyncBehavior::none(),
            dep_distance_mean: self.dep_distance,
            code_footprint: self.code_footprint,
            default_length: 200_000,
        }
    }
}

fn build_spec(name: &str) -> WorkloadProfile {
    // (float_mix, mem_intensity, streaming, pointer_chase, branchiness,
    //  code KiB, dep_distance, cold MiB, warm KiB)
    let k = match name {
        // --- SPECint ---
        "bzip2" => (false, 0.35, 0.55, 0.05, 0.45, 40, 4.5, 32, 1536),
        "crafty" => (false, 0.10, 0.20, 0.04, 0.60, 96, 3.8, 4, 256),
        "eon" => (true, 0.08, 0.25, 0.03, 0.35, 72, 4.2, 4, 256),
        "gap" => (false, 0.30, 0.30, 0.10, 0.40, 56, 4.0, 48, 1024),
        "gcc" => (false, 0.30, 0.25, 0.08, 0.75, 160, 3.6, 64, 2048),
        "gzip" => (false, 0.20, 0.60, 0.03, 0.40, 28, 4.3, 16, 512),
        "mcf" => (false, 0.95, 0.10, 0.45, 0.50, 24, 3.0, 384, 3584),
        "parser" => (false, 0.35, 0.20, 0.15, 0.70, 64, 3.4, 32, 1024),
        "perlbmk" => (false, 0.22, 0.25, 0.08, 0.65, 128, 3.8, 24, 768),
        "twolf" => (false, 0.45, 0.15, 0.12, 0.68, 48, 3.5, 8, 2048),
        "vortex" => (false, 0.28, 0.30, 0.10, 0.55, 144, 4.0, 48, 1536),
        "vpr" => (false, 0.35, 0.20, 0.10, 0.80, 48, 3.4, 16, 1024),
        // --- SPECfp ---
        "ammp" => (true, 0.55, 0.35, 0.15, 0.20, 40, 5.5, 96, 2048),
        "applu" => (true, 0.60, 0.80, 0.04, 0.30, 48, 6.5, 96, 2560),
        "apsi" => (true, 0.45, 0.60, 0.05, 0.25, 56, 5.5, 64, 2048),
        "art" => (false, 0.90, 0.30, 0.30, 0.55, 16, 3.2, 192, 3584),
        "equake" => (true, 0.75, 0.55, 0.18, 0.20, 32, 5.0, 128, 3072),
        "facerec" => (true, 0.65, 0.65, 0.10, 0.22, 40, 5.5, 96, 2560),
        "fma3d" => (true, 0.70, 0.50, 0.12, 0.28, 120, 5.0, 128, 2560),
        "galgel" => (true, 0.40, 0.70, 0.04, 0.20, 48, 6.0, 48, 2048),
        "lucas" => (true, 0.80, 0.85, 0.05, 0.12, 32, 6.5, 160, 3072),
        "mesa" => (true, 0.15, 0.40, 0.05, 0.35, 88, 4.8, 8, 512),
        "mgrid" => (true, 0.50, 0.90, 0.03, 0.10, 32, 7.0, 64, 2560),
        "sixtrack" => (true, 0.12, 0.45, 0.04, 0.25, 96, 5.2, 8, 512),
        "swim" => (true, 0.85, 0.95, 0.02, 0.08, 24, 7.0, 192, 3072),
        "wupwise" => (true, 0.40, 0.70, 0.05, 0.15, 40, 6.0, 64, 2048),
        _ => unreachable!("unknown SPEC benchmark {name}"),
    };
    let (float_mix, mem, streaming, chase, branchy, code_kib, dep, cold_mib, warm_kib) = k;
    let suite = if float_mix {
        Suite::SpecFp
    } else {
        Suite::SpecInt
    };
    Knobs {
        suite,
        float_mix,
        mem_intensity: mem,
        streaming,
        pointer_chase: chase,
        branchiness: branchy,
        code_footprint: code_kib * KIB,
        dep_distance: dep,
        cold_bytes: cold_mib * MIB,
        warm_bytes: warm_kib * KIB,
    }
    .into_profile(name)
}

fn build_parsec(name: &str) -> WorkloadProfile {
    // Start from a SPEC-like personality, then layer threading behaviour.
    // (float_mix, mem_intensity, streaming, chase, branchiness, code KiB, dep,
    //  cold MiB, warm KiB)
    let base = match name {
        "blackscholes" => (true, 0.15, 0.60, 0.02, 0.15, 40, 5.5, 16, 512),
        "bodytrack" => (true, 0.35, 0.45, 0.08, 0.40, 96, 4.5, 48, 1536),
        "canneal" => (false, 0.88, 0.10, 0.40, 0.45, 32, 3.2, 256, 3584),
        "dedup" => (false, 0.50, 0.40, 0.15, 0.55, 72, 3.8, 96, 2048),
        "fluidanimate" => (true, 0.45, 0.35, 0.12, 0.35, 56, 4.5, 64, 2048),
        "streamcluster" => (true, 0.70, 0.75, 0.06, 0.20, 32, 5.5, 128, 2560),
        "swaptions" => (true, 0.12, 0.40, 0.03, 0.30, 48, 5.0, 8, 384),
        "vips" => (true, 0.40, 0.55, 0.06, 0.45, 128, 4.5, 64, 1536),
        "x264" => (false, 0.38, 0.50, 0.08, 0.50, 144, 4.2, 64, 1536),
        _ => unreachable!("unknown PARSEC benchmark {name}"),
    };
    let (float_mix, mem, streaming, chase, branchy, code_kib, dep, cold_mib, warm_kib) = base;
    let mut p = Knobs {
        suite: Suite::Parsec,
        float_mix,
        mem_intensity: mem,
        streaming,
        pointer_chase: chase,
        branchiness: branchy,
        code_footprint: code_kib * KIB,
        dep_distance: dep,
        cold_bytes: cold_mib * MIB,
        warm_bytes: warm_kib * KIB,
    }
    .into_profile(name);

    // Full-system workloads execute noticeably more serializing instructions
    // (system calls, TLB maintenance) than user-level SPEC runs.
    p.mix.serializing = 0.0012;

    // Threading personality: (barrier_period, lock_period, cs_len, num_locks,
    // imbalance, shared_frac, shared_write_frac, shared MiB)
    let t = match name {
        "blackscholes" => (120_000, 0, 0, 1, 0.04, 0.02, 0.05, 8),
        "bodytrack" => (40_000, 25_000, 60, 16, 0.12, 0.08, 0.20, 16),
        "canneal" => (0, 15_000, 40, 64, 0.08, 0.30, 0.35, 192),
        "dedup" => (0, 8_000, 120, 8, 0.25, 0.15, 0.40, 64),
        "fluidanimate" => (25_000, 2_500, 30, 256, 0.15, 0.18, 0.45, 48),
        "streamcluster" => (15_000, 30_000, 50, 4, 0.10, 0.12, 0.15, 96),
        "swaptions" => (0, 0, 0, 1, 0.06, 0.01, 0.05, 4),
        "vips" => (60_000, 12_000, 80, 4, 0.85, 0.10, 0.30, 32),
        "x264" => (30_000, 10_000, 70, 12, 0.35, 0.12, 0.30, 48),
        _ => unreachable!(),
    };
    let (barrier, lock, cs, locks, imbalance, shared_frac, shared_wr, shared_mib) = t;
    p.sync = SyncBehavior {
        barrier_period: barrier,
        lock_period: lock,
        critical_section_len: cs,
        num_locks: locks,
        imbalance,
    };
    p.memory.shared_frac = shared_frac;
    p.memory.shared_write_frac = shared_wr;
    p.memory.shared_bytes = shared_mib * MIB;
    p.default_length = 150_000;
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_profile_exists_and_validates() {
        for name in SPEC_CPU2000 {
            let p = spec_profile(name).unwrap_or_else(|| panic!("missing profile for {name}"));
            p.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(p.name, name);
            assert!(!p.is_multithreaded(), "{name} must be single-threaded");
        }
    }

    #[test]
    fn every_parsec_profile_exists_and_validates() {
        for name in PARSEC {
            let p = parsec_profile(name).unwrap_or_else(|| panic!("missing profile for {name}"));
            p.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(p.name, name);
            assert!(p.is_multithreaded(), "{name} must be multi-threaded");
            assert_eq!(p.suite, Suite::Parsec);
        }
    }

    #[test]
    fn unknown_names_return_none() {
        assert!(spec_profile("doom3").is_none());
        assert!(parsec_profile("gcc").is_none());
        assert!(profile("nonexistent").is_none());
    }

    #[test]
    fn profile_resolves_both_suites() {
        assert!(profile("gcc").is_some());
        assert!(profile("vips").is_some());
    }

    #[test]
    fn catalog_counts_match_paper() {
        assert_eq!(SPEC_CPU2000.len(), 26);
        assert_eq!(PARSEC.len(), 9);
        assert_eq!(all_spec_profiles().len(), 26);
        assert_eq!(all_parsec_profiles().len(), 9);
    }

    #[test]
    fn fig6_benchmarks_are_in_spec_catalog() {
        for name in FIG6_BENCHMARKS {
            assert!(
                SPEC_CPU2000.contains(&name),
                "{name} missing from SPEC list"
            );
        }
    }

    #[test]
    fn memory_bound_benchmarks_have_large_footprints() {
        let mcf = spec_profile("mcf").unwrap();
        let gcc = spec_profile("gcc").unwrap();
        assert!(mcf.memory.cold_bytes > gcc.memory.cold_bytes);
        assert!(mcf.memory.p_hot < gcc.memory.p_hot);
        assert!(mcf.memory.pointer_chase > gcc.memory.pointer_chase);
    }

    #[test]
    fn vips_is_load_imbalanced() {
        let vips = parsec_profile("vips").unwrap();
        let blackscholes = parsec_profile("blackscholes").unwrap();
        assert!(vips.sync.imbalance > 4.0 * blackscholes.sync.imbalance);
    }

    #[test]
    fn fluidanimate_is_lock_heavy() {
        let fluid = parsec_profile("fluidanimate").unwrap();
        assert!(fluid.sync.lock_period > 0);
        assert!(fluid.sync.num_locks >= 64);
    }

    #[test]
    fn profile_names_are_distinct() {
        let mut names: Vec<&str> = SPEC_CPU2000.iter().chain(PARSEC.iter()).copied().collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
