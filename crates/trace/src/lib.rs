//! # iss-trace — instruction model and synthetic workload front-end
//!
//! This crate is the *functional front-end* substrate of the interval-simulation
//! reproduction. The HPCA 2010 paper uses the M5 functional simulator running
//! Alpha binaries of SPEC CPU2000 and PARSEC to produce the dynamic instruction
//! stream that is fed into the timing models. Neither those binaries nor M5 can
//! be shipped here, so this crate provides the closest synthetic equivalent: a
//! deterministic, seeded workload generator that produces dynamic instruction
//! streams ([`DynInst`]) from per-benchmark statistical profiles
//! ([`profile::WorkloadProfile`]).
//!
//! The crucial property for the reproduction is that the *same* stream is fed to
//! both the interval model and the detailed cycle-accurate model through the
//! *same* branch-predictor and memory-hierarchy simulators, so the quantities
//! the paper reports (error of interval simulation relative to detailed
//! simulation, trend fidelity, simulation speedup) are exercised by the same
//! code paths as in the paper.
//!
//! ## Quick example
//!
//! ```
//! use iss_trace::catalog;
//! use iss_trace::stream::{InstructionStream, SyntheticStream};
//!
//! let profile = catalog::spec_profile("mcf").expect("mcf is in the catalog");
//! let mut stream = SyntheticStream::new(&profile, /*thread*/ 0, /*seed*/ 42, /*len*/ 1000);
//! let mut loads = 0;
//! while let Some(inst) = stream.next_inst() {
//!     if inst.is_load() {
//!         loads += 1;
//!     }
//! }
//! assert!(loads > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod checkpoint;
pub mod fastfwd;
pub mod fxmap;
pub mod host_time;
pub mod inst;
pub mod profile;
pub mod stream;
pub mod sync;
pub mod threaded;

pub use checkpoint::{CheckpointStream, CoreResume};
pub use fastfwd::{fast_forward, fast_forward_batched, InstBatch};
pub use fxmap::{FxHashMap, FxHashSet};
pub use host_time::HostTimer;
pub use inst::{BranchClass, BranchInfo, DynInst, MemAccess, OpClass, RegId};
pub use profile::{BranchBehavior, MemoryBehavior, MixWeights, SyncBehavior, WorkloadProfile};
pub use stream::{
    geo_classify, geo_classify_head, geo_threshold_table, InstructionStream, SyntheticStream,
    DEP_POOL_CAP, GEO_U_MIN,
};
pub use sync::{SyncController, SyncOp};
pub use threaded::ThreadedWorkload;

/// Identifier of a hardware thread / core context within a simulated system.
pub type ThreadId = usize;

/// Number of architectural integer + floating-point registers modeled by the
/// synthetic ISA. The value is in line with a RISC ISA such as Alpha (32 int +
/// 32 fp); the exact number only matters for dependence-distance modeling.
pub const NUM_ARCH_REGS: u16 = 64;
