//! Property-based tests for the synthetic workload front-end.

use proptest::prelude::*;

use iss_trace::stream::{InstructionStream, SyntheticStream};
use iss_trace::sync::SyncController;
use iss_trace::{catalog, OpClass, ThreadedWorkload};

fn any_benchmark() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("gcc"),
        Just("mcf"),
        Just("swim"),
        Just("gzip"),
        Just("vpr"),
        Just("canneal"),
        Just("fluidanimate"),
        Just("blackscholes"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The stream always yields exactly the requested number of instructions,
    /// with strictly increasing sequence numbers.
    #[test]
    fn stream_length_and_sequence_numbers(
        bench in any_benchmark(),
        seed in 0u64..1_000_000,
        len in 1u64..3_000,
    ) {
        let p = catalog::profile(bench).unwrap();
        let mut s = SyntheticStream::new(&p, 0, seed, len);
        let mut count = 0;
        let mut last_seq = None;
        while let Some(i) = s.next_inst() {
            if let Some(prev) = last_seq {
                prop_assert_eq!(i.seq, prev + 1);
            } else {
                prop_assert_eq!(i.seq, 0);
            }
            last_seq = Some(i.seq);
            count += 1;
        }
        prop_assert_eq!(count, len);
        prop_assert!(s.next_inst().is_none(), "the stream must stay exhausted");
    }

    /// Two streams with identical parameters are identical instruction by
    /// instruction (determinism is what makes interval-vs-detailed
    /// comparisons meaningful).
    #[test]
    fn stream_is_reproducible(
        bench in any_benchmark(),
        seed in 0u64..1_000_000,
        len in 1u64..2_000,
    ) {
        let p = catalog::profile(bench).unwrap();
        let mut a = SyntheticStream::new(&p, 0, seed, len);
        let mut b = SyntheticStream::new(&p, 0, seed, len);
        loop {
            match (a.next_inst(), b.next_inst()) {
                (None, None) => break,
                (x, y) => prop_assert_eq!(x, y),
            }
        }
    }

    /// Structural invariants of every generated instruction: loads/stores
    /// carry addresses, branches carry outcomes, nothing else does, and the
    /// instruction classes stay within the profile's vocabulary.
    #[test]
    fn instruction_structure_is_consistent(
        bench in any_benchmark(),
        seed in 0u64..100_000,
    ) {
        let p = catalog::profile(bench).unwrap();
        let mut s = SyntheticStream::with_threads(&p, 0, 2, seed, 2_000);
        while let Some(i) = s.next_inst() {
            match i.op {
                OpClass::Load => {
                    prop_assert!(i.mem.is_some());
                    prop_assert!(!i.mem.unwrap().is_store);
                    prop_assert!(i.dst.is_some());
                }
                OpClass::Store => {
                    prop_assert!(i.mem.is_some());
                    prop_assert!(i.mem.unwrap().is_store);
                }
                OpClass::Branch => {
                    prop_assert!(i.branch.is_some());
                    prop_assert!(i.mem.is_none());
                }
                _ => {
                    prop_assert!(i.branch.is_none());
                    prop_assert!(i.mem.is_none());
                }
            }
            prop_assert!(i.exec_latency() >= 1 && i.exec_latency() <= 20);
        }
    }

    /// A multithreaded workload always splits the requested total exactly and
    /// every thread receives at least one instruction.
    #[test]
    fn threaded_workload_distributes_all_instructions(
        bench in prop_oneof![Just("vips"), Just("blackscholes"), Just("dedup")],
        threads in 1usize..8,
        total in 64u64..20_000,
    ) {
        let p = catalog::parsec_profile(bench).unwrap();
        let w = ThreadedWorkload::multithreaded(&p, threads, 3, total);
        prop_assert_eq!(w.num_cores(), threads);
        prop_assert_eq!(w.total_instructions(), total);
        for t in 0..threads {
            prop_assert!(w.instructions_on_core(t) >= 1);
        }
    }

    /// The synchronization controller releases a barrier no matter in which
    /// order threads arrive, and never reports a blocked thread afterwards.
    #[test]
    fn barriers_release_for_any_arrival_order(order in proptest::sample::subsequence(vec![0usize,1,2,3], 4)) {
        // `order` is a subsequence; the remaining threads arrive afterwards in
        // index order, so every permutation prefix is exercised.
        let mut sync = SyncController::new(4);
        let mut arrived = Vec::new();
        for &t in &order {
            sync.arrive_barrier(t, 1);
            arrived.push(t);
        }
        for t in 0..4 {
            if !arrived.contains(&t) {
                sync.arrive_barrier(t, 1);
            }
        }
        for t in 0..4 {
            prop_assert!(!sync.is_blocked(t), "thread {t} must be released");
        }
        prop_assert_eq!(sync.barriers_completed(), 1);
    }

    /// Locks are mutually exclusive and always eventually transferable: after
    /// an arbitrary sequence of acquire attempts, releasing by the holder
    /// leaves at most one new holder and no spuriously blocked thread.
    #[test]
    fn locks_are_mutually_exclusive(attempts in proptest::collection::vec(0usize..4, 1..24)) {
        let mut sync = SyncController::new(4);
        let mut holder: Option<usize> = None;
        for &t in &attempts {
            let got = sync.try_acquire(t, 7);
            match holder {
                None => {
                    prop_assert!(got, "a free lock must be granted");
                    holder = Some(t);
                }
                Some(h) if h == t => prop_assert!(got, "re-acquire by the holder must succeed"),
                Some(_) => prop_assert!(!got, "a held lock must not be granted to another thread"),
            }
        }
        if let Some(h) = holder {
            sync.release(h, 7);
            // After the release, either nobody or exactly one former waiter
            // holds the lock; the holder is never blocked.
            for t in 0..4 {
                if sync.try_acquire(t, 7) {
                    prop_assert!(!sync.is_blocked(t));
                    break;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The dependence-distance sampler survives the whole profile parameter
    /// space. `geo_p` is derived from `dep_distance_mean` and must be clamped
    /// into the open interval (0, 1): degenerate means (≤ 1.0, NaN, or huge)
    /// used to drive `ln(1 - geo_p)` to the `ln(1e-9)` rescue value, which
    /// collapsed every sampled dependence distance to 1. Whatever the profile
    /// says, the stream must produce the full requested length with sources
    /// drawn from the architectural register file.
    #[test]
    fn dependence_sampling_survives_the_full_profile_space(
        bench in any_benchmark(),
        // The vendored proptest has integer strategies only; floats are
        // derived from integer draws. `mean_kind` spans NaN, negative, the
        // degenerate (0, 1.5) band that clamps at the GEO_P_MAX end, the
        // realistic catalog territory, and the huge GEO_P_MIN extreme.
        mean_kind in 0usize..5,
        mean_raw in 0u64..1_000_000,
        load_pm in 50u64..600,
        branch_pm in 20u64..500,
        chase_pm in 0u64..1_000,
        bias_pm in 0u64..1_000,
        seed in 0u64..100_000,
    ) {
        let unit = mean_raw as f64 / 1e6;
        let mean = match mean_kind {
            0 => f64::NAN,
            1 => -3.0 * unit,
            2 => 1.5 * unit,
            3 => 1.5 + 62.5 * unit,
            _ => 64.0 + (1e9 - 64.0) * unit,
        };
        let (load, branch) = (load_pm as f64 / 1e3, branch_pm as f64 / 1e3);
        let (chase, bias) = (chase_pm as f64 / 1e3, bias_pm as f64 / 1e3);
        let mut p = catalog::profile(bench).unwrap();
        p.dep_distance_mean = mean;
        p.mix.load = load;
        p.mix.branch = branch;
        p.memory.pointer_chase = chase;
        p.branches.bias = bias;
        let mut s = SyntheticStream::new(&p, 0, seed, 2_000);
        let mut n = 0u64;
        while let Some(i) = s.next_inst() {
            for src in i.srcs.into_iter().flatten() {
                prop_assert!(src < iss_trace::NUM_ARCH_REGS);
            }
            n += 1;
        }
        prop_assert_eq!(n, 2_000);
    }

    /// With a realistic dependence-distance mean, sources must regularly
    /// reach *past* the most recent destination (a geometric distribution
    /// with mean m picks distance 1 only ~1/m of the time). This is the
    /// observable that the collapsed-denominator bug destroyed.
    #[test]
    fn realistic_means_spread_dependence_distances(
        bench in any_benchmark(),
        mean_pm in 6_000u64..32_000,
        seed in 0u64..100_000,
    ) {
        let mean = mean_pm as f64 / 1e3;
        let mut p = catalog::profile(bench).unwrap();
        p.dep_distance_mean = mean;
        let mut s = SyntheticStream::new(&p, 0, seed, 6_000);
        let mut last_dst = None;
        let mut picks = 0u64;
        let mut newest_hits = 0u64;
        let mut i = 0u64;
        while let Some(inst) = s.next_inst() {
            // Ignore the warm-up prefix while the destination pool fills.
            if i > 1_000 {
                if let Some(src) = inst.srcs[0] {
                    picks += 1;
                    if Some(src) == last_dst {
                        newest_hits += 1;
                    }
                }
            }
            if inst.dst.is_some() {
                last_dst = inst.dst;
            }
            i += 1;
        }
        prop_assert!(picks > 100, "the mix must produce source operands");
        // Pointer chasing and pool clamping inflate newest-hits above 1/m,
        // but nowhere near "every pick": under the old bug this ratio was
        // ~1.0 for degenerate denominators.
        prop_assert!(
            (newest_hits as f64) < 0.8 * picks as f64,
            "distance collapsed to 1: {newest_hits}/{picks} picks hit the newest destination"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The geometric threshold classify is invariant in its `head` speed
    /// knob and equal to its defining reference (`partition_point + 1`) for
    /// every draw, every catalog-shaped mean, and every head the adaptive
    /// selector can pick. This is the property that lets `SyntheticStream`
    /// freeze the head per stream purely as a throughput decision.
    #[test]
    fn geo_classify_is_head_invariant(
        mean_pm in 1_050u32..20_000,
        u_pm in 0u64..1_000_000,
    ) {
        let mean = f64::from(mean_pm) / 1e3;
        let table = iss_trace::geo_threshold_table(mean);
        let u = (u_pm as f64 / 1e6).max(iss_trace::GEO_U_MIN);
        let reference = table.partition_point(|&t| u < t) + 1;
        for head in [0usize, 8, 16, iss_trace::geo_classify_head(mean)] {
            prop_assert_eq!(
                iss_trace::geo_classify(&table, head, u),
                reference,
                "head {} diverged at mean {} u {}", head, mean, u
            );
        }
    }
}
