//! Runtime-detected `std::arch` backend for the `iss-simd` slice kernels.
//!
//! This is the **one** crate in the workspace allowed to contain `unsafe`
//! code, and it exists for exactly one reason: the portable branchless
//! kernels in `iss-simd` autovectorize well for short slices, but the
//! baseline `x86-64` target (SSE2) has no 64-bit integer vector compare, so
//! long equality scans and min/max reductions over `u64` columns — the TLB
//! page walk and its LRU victim scan are the motivating callers — leave a
//! 3-10× win on the table on AVX-512 hosts. The functions here provide that
//! win behind `is_x86_feature_detected!` runtime dispatch and fall back to
//! plain scalar loops everywhere else, so the crate is safe to call
//! unconditionally on every target.
//!
//! Contract, shared with `iss-simd` and enforced by its differential
//! property tests: every function returns **exactly** what the documented
//! scalar reference loop returns (first match, first minimum, first
//! maximum). The vector paths only ever reduce with order-insensitive
//! operations (equality masks, unsigned min/max) and then locate the first
//! occurrence, so lane order can never leak into results and the simulator
//! stays bit-identical whether or not the backend is detected.
//!
//! Lint note: the source lint engine (`crates/lint`) deliberately leaves
//! this crate out of its model/harness tree lists. Model crates must carry
//! `#![forbid(unsafe_code)]`, which is incompatible with `std::arch` by
//! design; confining the intrinsics to this dedicated leaf crate is what
//! keeps the model-crate allowlist budget at zero (ISSUE 10). The crate
//! compiles under `clippy -D warnings` like everything else, and every
//! `unsafe fn` documents its safety contract.

#![warn(missing_docs)]

use std::sync::OnceLock;

/// One-time cached result of the CPU feature probe.
///
/// `is_x86_feature_detected!` itself resolves to a call into libstd on
/// every use; at a few nanoseconds that call is real money on kernels
/// invoked once per simulated memory access, so the answer is frozen here
/// and every dispatch pays one atomic load and a predictable branch.
static AVX512: OnceLock<bool> = OnceLock::new();

/// Whether the accelerated backend is active on this host.
///
/// `true` only on `x86_64` hosts whose CPU reports AVX-512F at runtime.
/// When this returns `false` the public kernels still work — they run the
/// scalar fallback — but callers holding an equally-good portable path
/// (as `iss-simd` does for short slices) should prefer their own.
#[inline]
#[must_use]
pub fn available() -> bool {
    *AVX512.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx512f")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Index of the first element equal to `needle`, exactly as
/// `xs.iter().position(|&x| x == needle)`.
#[inline]
#[must_use]
pub fn find_eq(xs: &[u64], needle: u64) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if available() {
        // SAFETY: `available()` verified AVX-512F support at runtime.
        return unsafe { x86::find_eq_avx512(xs, needle) };
    }
    xs.iter().position(|&x| x == needle)
}

/// Index of the first minimum of `xs`, exactly as
/// `xs.iter().enumerate().min_by_key(|&(_, &x)| x).map(|(i, _)| i)`
/// (ties resolve to the lowest index). `None` on an empty slice.
#[inline]
#[must_use]
pub fn min_index(xs: &[u64]) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if available() {
        // SAFETY: `available()` verified AVX-512F support at runtime.
        return unsafe { x86::min_index_avx512(xs) };
    }
    scalar_extremum(xs, false)
}

/// Index of the first maximum of `xs` (ties resolve to the lowest index).
/// `None` on an empty slice.
#[inline]
#[must_use]
pub fn max_index(xs: &[u64]) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if available() {
        // SAFETY: `available()` verified AVX-512F support at runtime.
        return unsafe { x86::max_index_avx512(xs) };
    }
    scalar_extremum(xs, true)
}

/// Scalar fallback: first-extremum fold, compiled on every target.
fn scalar_extremum(xs: &[u64], maximize: bool) -> Option<usize> {
    let (&first, rest) = xs.split_first()?;
    let mut best_v = first;
    let mut best_i = 0usize;
    for (j, &x) in rest.iter().enumerate() {
        let better = if maximize { x > best_v } else { x < best_v };
        if better {
            best_v = x;
            best_i = j + 1;
        }
    }
    Some(best_i)
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __mmask8, _mm512_cmpeq_epu64_mask, _mm512_loadu_si512, _mm512_mask_cmpeq_epu64_mask,
        _mm512_mask_loadu_epi64, _mm512_maskz_loadu_epi64, _mm512_max_epu64, _mm512_min_epu64,
        _mm512_reduce_max_epu64, _mm512_reduce_min_epu64, _mm512_set1_epi64,
    };

    /// First index equal to `needle` via 8-wide compare masks.
    ///
    /// The remainder uses a masked load, so the whole scan is branch-free
    /// except for the one well-predicted "any lane hit?" test per chunk;
    /// `trailing_zeros` on the compare mask recovers the *first* matching
    /// lane, preserving scalar `position` semantics.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX-512F (`is_x86_feature_detected!("avx512f")`).
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn find_eq_avx512(xs: &[u64], needle: u64) -> Option<usize> {
        let probe = _mm512_set1_epi64(needle as i64);
        let mut i = 0usize;
        while i + 8 <= xs.len() {
            let v = _mm512_loadu_si512(xs.as_ptr().add(i).cast());
            let k = _mm512_cmpeq_epu64_mask(v, probe);
            if k != 0 {
                return Some(i + k.trailing_zeros() as usize);
            }
            i += 8;
        }
        let rem = xs.len() - i;
        if rem > 0 {
            let m: __mmask8 = (1u8 << rem) - 1;
            let v = _mm512_maskz_loadu_epi64(m, xs.as_ptr().add(i).cast());
            let k = _mm512_mask_cmpeq_epu64_mask(m, v, probe);
            if k != 0 {
                return Some(i + k.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Two-pass first-minimum: an 8-wide unsigned-min reduction finds the
    /// extremal *value*, then [`find_eq_avx512`] locates its first
    /// occurrence — which is by definition the first minimum, so scalar
    /// tie-to-lowest-index semantics are preserved exactly. Masked-out
    /// remainder lanes load as `u64::MAX`, the min identity.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX-512F (`is_x86_feature_detected!("avx512f")`).
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn min_index_avx512(xs: &[u64]) -> Option<usize> {
        if xs.is_empty() {
            return None;
        }
        let mut acc = _mm512_set1_epi64(-1i64); // all lanes u64::MAX
        let mut i = 0usize;
        while i + 8 <= xs.len() {
            let v = _mm512_loadu_si512(xs.as_ptr().add(i).cast());
            acc = _mm512_min_epu64(acc, v);
            i += 8;
        }
        let rem = xs.len() - i;
        if rem > 0 {
            let m: __mmask8 = (1u8 << rem) - 1;
            let v = _mm512_mask_loadu_epi64(_mm512_set1_epi64(-1i64), m, xs.as_ptr().add(i).cast());
            acc = _mm512_min_epu64(acc, v);
        }
        find_eq_avx512(xs, _mm512_reduce_min_epu64(acc))
    }

    /// Two-pass first-maximum, the mirror of [`min_index_avx512`].
    /// Masked-out remainder lanes load as zero, the unsigned-max identity.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX-512F (`is_x86_feature_detected!("avx512f")`).
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn max_index_avx512(xs: &[u64]) -> Option<usize> {
        if xs.is_empty() {
            return None;
        }
        let mut acc = _mm512_set1_epi64(0);
        let mut i = 0usize;
        while i + 8 <= xs.len() {
            let v = _mm512_loadu_si512(xs.as_ptr().add(i).cast());
            acc = _mm512_max_epu64(acc, v);
            i += 8;
        }
        let rem = xs.len() - i;
        if rem > 0 {
            let m: __mmask8 = (1u8 << rem) - 1;
            let v = _mm512_maskz_loadu_epi64(m, xs.as_ptr().add(i).cast());
            acc = _mm512_max_epu64(acc, v);
        }
        find_eq_avx512(xs, _mm512_reduce_max_epu64(acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pseudo-random but deterministic test columns.
    fn column(len: usize, seed: u64) -> Vec<u64> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s % 97
            })
            .collect()
    }

    #[test]
    fn kernels_match_scalar_references_across_lengths() {
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 48, 64, 100] {
            let xs = column(len, 0x5eed ^ len as u64);
            for needle in 0..97u64 {
                assert_eq!(
                    find_eq(&xs, needle),
                    xs.iter().position(|&x| x == needle),
                    "find_eq len {len} needle {needle}"
                );
            }
            assert_eq!(
                min_index(&xs),
                xs.iter()
                    .enumerate()
                    .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
                    .map(|(i, _)| i),
                "min_index len {len}"
            );
            let max_ref = if xs.is_empty() {
                None
            } else {
                let m = *xs.iter().max().unwrap_or(&0);
                xs.iter().position(|&x| x == m)
            };
            assert_eq!(max_index(&xs), max_ref, "max_index len {len}");
        }
    }

    #[test]
    fn scalar_fallback_matches_too() {
        // Exercise the fallback explicitly, whatever the host supports.
        let xs = column(64, 0xfa11);
        let m = *xs.iter().min().unwrap_or(&0);
        assert_eq!(scalar_extremum(&xs, false), xs.iter().position(|&x| x == m));
        assert_eq!(scalar_extremum(&[], true), None);
    }
}
