//! Portable branchless lane kernels for the batched hot loops.
//!
//! The simulator's warming and interval hot paths are structure-of-arrays
//! column passes (PR 9); this crate supplies the lane layer those passes
//! vectorize through. Everything here is written so stable rustc/LLVM
//! reliably autovectorizes it **without** `std::arch` or `unsafe`:
//!
//! * fixed-width lane types ([`U64x8`], [`F64x8`], [`Mask8`]) whose
//!   select/compare/mask/reduce ops are straight-line array arithmetic with
//!   no data-dependent branches in the lane body, and
//! * slice kernels ([`find_eq`], [`min_index`], [`max_index`],
//!   [`count_gt_f64`]) built on `chunks_exact` main loops plus scalar
//!   tails, so any slice length (including empty and shorter-than-a-lane)
//!   is handled and the per-lane work stays branch-free.
//!
//! The kernel bodies use the idioms that measured fastest on the default
//! (baseline `x86-64`, SSE2) target, where 64-bit integer vector compares
//! do not exist: equality scans OR-fold a whole lane into one "any match?"
//! bit and only then locate the lane (one well-predicted branch per
//! [`LANE_WIDTH`] elements), and extremum scans use a conditional-move
//! fold. Long `u64` scans additionally dispatch to the runtime-detected
//! `std::arch` backend in `iss-simd-arch` — the one crate allowed to hold
//! `unsafe` intrinsics — when the host has AVX-512; short slices stay on
//! the portable path, which wins there even on AVX-512 hosts because the
//! backend call cannot be inlined across its `#[target_feature]` boundary.
//!
//! Every kernel is *exact*: its result is defined by the scalar reference
//! loop it replaces (first match, first minimum, …), never by "whatever the
//! vector order produced". The model crates (caches, TLBs, the BTB, the
//! synthetic-stream threshold scan) call these kernels on paths where
//! bit-identical behaviour is pinned by differential tests, so the scalar
//! equivalence documented on each function is a hard contract, property
//! tested in `tests/proptests.rs`.
//!
//! The lane width is a compile-time constant ([`LANE_WIDTH`] = 8): 8×u64
//! fills one AVX-512 register, two AVX2 registers or four NEON registers,
//! and the `chunks_exact` structure lets LLVM pick whatever width the
//! target actually has. There is deliberately no runtime override knob —
//! results never depend on the lane width, so there is nothing a knob
//! could change except making the tails longer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Number of 64-bit lanes the slice kernels process per main-loop step.
pub const LANE_WIDTH: usize = 8;

/// Slice length at which the `u64` kernels switch to the runtime-detected
/// `iss-simd-arch` backend (when the host supports it).
///
/// Below this the portable loops win: the backend sits behind a function
/// call that LLVM cannot inline across the `#[target_feature]` boundary,
/// and an 8-way cache set fits in one portable lane step anyway. At 32+
/// elements (the TLB page and stamp columns are 48-64) the vector compare
/// and min/max reductions amortize the call several times over.
pub const ARCH_MIN_LEN: usize = 32;

/// Eight 64-bit unsigned lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct U64x8(pub [u64; LANE_WIDTH]);

/// Eight 64-bit float lanes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64x8(pub [f64; LANE_WIDTH]);

/// Per-lane boolean mask produced by the lane comparisons.
///
/// Stored as `bool` lanes (LLVM's `i1` vectors) rather than integer
/// sentinels: select and reduce lower to native blend/movemask sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mask8(pub [bool; LANE_WIDTH]);

impl U64x8 {
    /// All lanes set to `v`.
    #[inline]
    #[must_use]
    pub fn splat(v: u64) -> Self {
        U64x8([v; LANE_WIDTH])
    }

    /// Loads the first [`LANE_WIDTH`] elements of `xs`.
    ///
    /// # Panics
    ///
    /// Panics when `xs` is shorter than one lane.
    #[inline]
    #[must_use]
    pub fn from_slice(xs: &[u64]) -> Self {
        let mut lanes = [0u64; LANE_WIDTH];
        lanes.copy_from_slice(&xs[..LANE_WIDTH]);
        U64x8(lanes)
    }

    /// The consecutive indices `base..base + LANE_WIDTH`, as lanes.
    #[inline]
    #[must_use]
    pub fn indices(base: u64) -> Self {
        let mut lanes = [0u64; LANE_WIDTH];
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane = base + j as u64;
        }
        U64x8(lanes)
    }

    /// Lane-wise equality mask.
    #[inline]
    #[must_use]
    pub fn eq(self, other: Self) -> Mask8 {
        Mask8(core::array::from_fn(|j| self.0[j] == other.0[j]))
    }

    /// Lane-wise strict less-than mask (`self < other`).
    #[inline]
    #[must_use]
    pub fn lt(self, other: Self) -> Mask8 {
        Mask8(core::array::from_fn(|j| self.0[j] < other.0[j]))
    }

    /// Lane-wise wrapping sum with `other`.
    #[inline]
    #[must_use]
    pub fn wrapping_add(self, other: Self) -> Self {
        U64x8(core::array::from_fn(|j| self.0[j].wrapping_add(other.0[j])))
    }

    /// Horizontal minimum over the lanes.
    #[inline]
    #[must_use]
    pub fn reduce_min(self) -> u64 {
        let mut m = self.0[0];
        for j in 1..LANE_WIDTH {
            m = m.min(self.0[j]);
        }
        m
    }

    /// Horizontal wrapping sum over the lanes.
    #[inline]
    #[must_use]
    pub fn reduce_sum(self) -> u64 {
        let mut s = 0u64;
        for j in 0..LANE_WIDTH {
            s = s.wrapping_add(self.0[j]);
        }
        s
    }
}

impl F64x8 {
    /// All lanes set to `v`.
    #[inline]
    #[must_use]
    pub fn splat(v: f64) -> Self {
        F64x8([v; LANE_WIDTH])
    }

    /// Loads the first [`LANE_WIDTH`] elements of `xs`.
    ///
    /// # Panics
    ///
    /// Panics when `xs` is shorter than one lane.
    #[inline]
    #[must_use]
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut lanes = [0f64; LANE_WIDTH];
        lanes.copy_from_slice(&xs[..LANE_WIDTH]);
        F64x8(lanes)
    }

    /// Lane-wise strict greater-than mask (`self > other`), IEEE semantics
    /// (`NaN` compares false in every lane).
    #[inline]
    #[must_use]
    pub fn gt(self, other: Self) -> Mask8 {
        Mask8(core::array::from_fn(|j| self.0[j] > other.0[j]))
    }
}

impl Mask8 {
    /// Per-lane select: `if_true`'s lane where the mask is set, else
    /// `if_false`'s.
    #[inline]
    #[must_use]
    pub fn select(self, if_true: U64x8, if_false: U64x8) -> U64x8 {
        U64x8(core::array::from_fn(|j| {
            if self.0[j] {
                if_true.0[j]
            } else {
                if_false.0[j]
            }
        }))
    }

    /// Whether any lane is set.
    #[inline]
    #[must_use]
    pub fn any(self) -> bool {
        self.0.iter().any(|&b| b)
    }

    /// Number of set lanes.
    #[inline]
    #[must_use]
    pub fn count(self) -> usize {
        let mut n = 0usize;
        for j in 0..LANE_WIDTH {
            n += usize::from(self.0[j]);
        }
        n
    }

    /// The mask as a bit pattern: bit `j` is lane `j`.
    #[inline]
    #[must_use]
    pub fn bits(self) -> u32 {
        let mut b = 0u32;
        for j in 0..LANE_WIDTH {
            b |= u32::from(self.0[j]) << j;
        }
        b
    }

    /// Index of the lowest set lane, if any.
    #[inline]
    #[must_use]
    pub fn first_set(self) -> Option<usize> {
        let b = self.bits();
        (b != 0).then(|| b.trailing_zeros() as usize)
    }
}

/// Index of the **first** element equal to `needle`, exactly as
/// `xs.iter().position(|&x| x == needle)` would return it.
///
/// Three length regimes, each the measured winner on its inputs:
///
/// * **One lane or less** (a cache set's tag column): plain scalar
///   early-exit scan. The simulator's probes overwhelmingly hit the
///   first ways — fills start at way 0 and hot lines are re-probed at
///   the way they already occupy — so the data-dependent exit is
///   well-predicted and beats any fold that must always touch all eight
///   lanes (measured ~3× on the all-hit L2 probe row).
/// * **Up to [`ARCH_MIN_LEN`]**: the main loop OR-folds a whole lane of
///   equality tests into one "any match?" bit and only branches on that
///   aggregate, then rescans the hit chunk back-to-front with
///   conditional moves so the *first* matching lane wins.
/// * **[`ARCH_MIN_LEN`] and beyond** (TLB page columns): the
///   `iss-simd-arch` vector backend when the host supports it.
#[inline]
#[must_use]
pub fn find_eq(xs: &[u64], needle: u64) -> Option<usize> {
    if xs.len() <= LANE_WIDTH {
        return xs.iter().position(|&x| x == needle);
    }
    if xs.len() >= ARCH_MIN_LEN && iss_simd_arch::available() {
        return iss_simd_arch::find_eq(xs, needle);
    }
    let mut chunks = xs.chunks_exact(LANE_WIDTH);
    let mut base = 0usize;
    for c in chunks.by_ref() {
        let mut any = 0u64;
        for &x in c {
            any |= u64::from(x == needle);
        }
        if any != 0 {
            let mut hit = 0usize;
            for (j, &x) in c.iter().enumerate().rev() {
                if x == needle {
                    hit = j;
                }
            }
            return Some(base + hit);
        }
        base += LANE_WIDTH;
    }
    chunks
        .remainder()
        .iter()
        .position(|&x| x == needle)
        .map(|j| base + j)
}

/// Index of the **first** minimum of `xs`, exactly as
/// `xs.iter().enumerate().min_by_key(|(_, &x)| x).map(|(i, _)| i)` would
/// return it (ties resolve to the lowest index). `None` on an empty slice.
///
/// Short slices (a cache set's stamp column) use a strict-compare
/// conditional-move fold; longer ones run two passes — a branchless
/// per-lane-column reduction to the extremal *value*, then [`find_eq`] to
/// its first occurrence, which is by definition the first minimum — and
/// dispatch to the `iss-simd-arch` backend at [`ARCH_MIN_LEN`] when the
/// host supports it.
#[inline]
#[must_use]
pub fn min_index(xs: &[u64]) -> Option<usize> {
    select_index(xs, false)
}

/// Index of the **first** maximum of `xs` (ties resolve to the lowest
/// index; note `Iterator::max_by_key` resolves ties to the *highest* index,
/// so callers relying on tie order must hold unique values). `None` on an
/// empty slice.
#[inline]
#[must_use]
pub fn max_index(xs: &[u64]) -> Option<usize> {
    select_index(xs, true)
}

/// Shared first-extremum scan: `maximize` flips the comparison.
#[inline]
fn select_index(xs: &[u64], maximize: bool) -> Option<usize> {
    if xs.len() >= ARCH_MIN_LEN && iss_simd_arch::available() {
        return if maximize {
            iss_simd_arch::max_index(xs)
        } else {
            iss_simd_arch::min_index(xs)
        };
    }
    let (&first, rest) = xs.split_first()?;
    if xs.len() <= LANE_WIDTH {
        // Strict compare keeps the earliest index; compiles to cmov.
        let mut best_v = first;
        let mut best_i = 0usize;
        for (j, &x) in rest.iter().enumerate() {
            let better = if maximize { x > best_v } else { x < best_v };
            if better {
                best_v = x;
                best_i = j + 1;
            }
        }
        return Some(best_i);
    }
    // Two passes: reduce per lane column to the extremal value (no index
    // bookkeeping in the hot loop), then locate its first occurrence.
    let mut acc = [first; LANE_WIDTH];
    let mut chunks = xs.chunks_exact(LANE_WIDTH);
    for c in chunks.by_ref() {
        for (a, &x) in acc.iter_mut().zip(c) {
            *a = if maximize { (*a).max(x) } else { (*a).min(x) };
        }
    }
    let mut best = first;
    for &a in &acc {
        best = if maximize { best.max(a) } else { best.min(a) };
    }
    for &x in chunks.remainder() {
        best = if maximize { best.max(x) } else { best.min(x) };
    }
    find_eq(xs, best)
}

/// Number of elements strictly greater than `pivot`, exactly as
/// `xs.iter().filter(|&&x| pivot < x).count()` (IEEE comparisons: `NaN`
/// elements never count, a `NaN` pivot counts nothing).
///
/// This is the branchless counting scan behind the *head* of the geometric
/// threshold-table classify: on a descending table the count of thresholds
/// above the draw *is* the `partition_point`, with no data-dependent
/// branches for the branch predictor to miss on random draws. Measured
/// caveat (recorded so nobody re-learns it): counting the **full** 64-entry
/// table loses to `partition_point`, whose cmov binary search is already
/// branch-free — the win only appears when the scan covers a short head
/// holding most of the probability mass (see `iss_trace::geo_classify`).
#[inline]
#[must_use]
pub fn count_gt_f64(xs: &[f64], pivot: f64) -> usize {
    let mut chunks = xs.chunks_exact(LANE_WIDTH);
    let mut n = 0usize;
    for c in chunks.by_ref() {
        let mut k = 0usize;
        for &x in c {
            k += usize::from(x > pivot);
        }
        n += k;
    }
    for &x in chunks.remainder() {
        n += usize::from(x > pivot);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_compare_select_reduce_roundtrip() {
        let a = U64x8([5, 1, 9, 9, 0, 7, 3, 2]);
        let b = U64x8::splat(4);
        let lt = a.lt(b);
        assert_eq!(lt.0, [false, true, false, false, true, false, true, true]);
        assert_eq!(lt.count(), 4);
        assert_eq!(lt.bits(), 0b1101_0010);
        assert_eq!(lt.first_set(), Some(1));
        let sel = lt.select(U64x8::splat(1), U64x8::splat(0));
        assert_eq!(sel.reduce_sum(), 4);
        assert_eq!(a.reduce_min(), 0);
        assert_eq!(a.eq(U64x8::splat(9)).bits(), 0b0000_1100);
        assert_eq!(U64x8::indices(10).0, [10, 11, 12, 13, 14, 15, 16, 17]);
        assert_eq!(a.wrapping_add(U64x8::splat(1)).0[0], 6);
    }

    #[test]
    fn find_eq_matches_position_across_lengths() {
        for len in 0..40usize {
            let xs: Vec<u64> = (0..len as u64).map(|i| i % 11).collect();
            for needle in 0..12u64 {
                assert_eq!(
                    find_eq(&xs, needle),
                    xs.iter().position(|&x| x == needle),
                    "len {len} needle {needle}"
                );
            }
        }
    }

    #[test]
    fn min_max_index_match_scalar_fold_with_ties() {
        // Duplicated extremes on both sides of a lane boundary.
        let xs = [7u64, 3, 9, 3, 9, 5, 3, 8, 9, 3, 1, 1];
        assert_eq!(min_index(&xs), Some(10));
        assert_eq!(max_index(&xs), Some(2));
        assert_eq!(min_index(&[]), None);
        assert_eq!(min_index(&[42]), Some(0));
        assert_eq!(max_index(&[42]), Some(0));
        // All-equal: first index wins for both.
        let eq = [6u64; 19];
        assert_eq!(min_index(&eq), Some(0));
        assert_eq!(max_index(&eq), Some(0));
    }

    #[test]
    fn count_gt_counts_strictly_above_pivot() {
        let xs: Vec<f64> = (0..67).map(|i| f64::from(i) / 10.0).collect();
        assert_eq!(count_gt_f64(&xs, 3.05), 36);
        assert_eq!(count_gt_f64(&xs, -1.0), 67);
        assert_eq!(count_gt_f64(&xs, 100.0), 0);
        assert_eq!(count_gt_f64(&[], 0.0), 0);
        assert_eq!(count_gt_f64(&xs, f64::NAN), 0);
        assert_eq!(count_gt_f64(&[f64::NAN, 1.0], 0.5), 1);
    }
}
