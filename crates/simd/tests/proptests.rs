//! Differential property tests for the lane layer: every lane op and every
//! slice kernel against the scalar reference loop that defines it.
//!
//! The kernels' documented contract is *exact* scalar equivalence — first
//! match, first minimum, strict counts — across every length regime the
//! dispatch logic distinguishes (scalar early-exit at one lane or less, the
//! portable chunked fold, and the runtime-detected `iss-simd-arch` backend
//! beyond its minimum length). Lengths here are drawn from `0..100`, which
//! straddles all three regimes plus the empty slice and every
//! non-multiple-of-`LANE_WIDTH` tail; values are drawn from a narrow range
//! so duplicates (and therefore tie-breaking) occur constantly.

use iss_simd::{count_gt_f64, find_eq, max_index, min_index, F64x8, Mask8, U64x8, LANE_WIDTH};
use proptest::prelude::*;

/// First-minimum reference: lowest index among the minima.
fn ref_min_index(xs: &[u64]) -> Option<usize> {
    let min = *xs.iter().min()?;
    xs.iter().position(|&x| x == min)
}

/// First-maximum reference: lowest index among the maxima.
fn ref_max_index(xs: &[u64]) -> Option<usize> {
    let max = *xs.iter().max()?;
    xs.iter().position(|&x| x == max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `find_eq` is `position` on every length and needle, present or not.
    #[test]
    fn find_eq_is_position(
        xs in proptest::collection::vec(0u64..20, 0..100),
        needle in 0u64..22,
    ) {
        prop_assert_eq!(find_eq(&xs, needle), xs.iter().position(|&x| x == needle));
    }

    /// `min_index`/`max_index` pick the first extremum under heavy ties.
    #[test]
    fn extrema_resolve_ties_to_lowest_index(
        xs in proptest::collection::vec(0u64..6, 0..100),
    ) {
        prop_assert_eq!(min_index(&xs), ref_min_index(&xs));
        prop_assert_eq!(max_index(&xs), ref_max_index(&xs));
    }

    /// `count_gt_f64` counts strictly-greater elements exactly, across
    /// whole-lane bodies and scalar tails.
    #[test]
    fn count_gt_is_filter_count(
        raw in proptest::collection::vec(0u32..2_000, 0..100),
        pivot_raw in 0u32..2_000,
    ) {
        let xs: Vec<f64> = raw.iter().map(|&v| f64::from(v) / 1e3).collect();
        let pivot = f64::from(pivot_raw) / 1e3;
        prop_assert_eq!(
            count_gt_f64(&xs, pivot),
            xs.iter().filter(|&&x| pivot < x).count()
        );
    }

    /// The `U64x8` compare/select/reduce ops agree with per-lane scalar
    /// arithmetic, and the mask accessors agree with each other.
    #[test]
    fn lane_ops_match_scalar_per_lane(
        a in proptest::collection::vec(0u64..50, LANE_WIDTH..9),
        b in proptest::collection::vec(0u64..50, LANE_WIDTH..9),
    ) {
        let va = U64x8::from_slice(&a);
        let vb = U64x8::from_slice(&b);

        let eq = va.eq(vb);
        let lt = va.lt(vb);
        for j in 0..LANE_WIDTH {
            prop_assert_eq!(eq.0[j], a[j] == b[j]);
            prop_assert_eq!(lt.0[j], a[j] < b[j]);
        }

        let sum = va.wrapping_add(vb);
        for j in 0..LANE_WIDTH {
            prop_assert_eq!(sum.0[j], a[j].wrapping_add(b[j]));
        }
        prop_assert_eq!(
            va.reduce_sum(),
            a.iter().fold(0u64, |s, &x| s.wrapping_add(x))
        );
        prop_assert_eq!(va.reduce_min(), *a.iter().min().expect("eight lanes"));

        let sel = lt.select(va, vb);
        for j in 0..LANE_WIDTH {
            prop_assert_eq!(sel.0[j], if a[j] < b[j] { a[j] } else { b[j] });
        }

        let set: Vec<usize> = (0..LANE_WIDTH).filter(|&j| lt.0[j]).collect();
        prop_assert_eq!(lt.any(), !set.is_empty());
        prop_assert_eq!(lt.count(), set.len());
        prop_assert_eq!(lt.first_set(), set.first().copied());
        let mut bits = 0u32;
        for &j in &set {
            bits |= 1 << j;
        }
        prop_assert_eq!(lt.bits(), bits);
    }

    /// `F64x8::gt` follows IEEE comparison semantics lane by lane.
    #[test]
    fn float_gt_matches_scalar_per_lane(
        raw in proptest::collection::vec(0u32..100, LANE_WIDTH..9),
        pivot_raw in 0u32..100,
    ) {
        let lanes: Vec<f64> = raw.iter().map(|&v| f64::from(v) / 10.0).collect();
        let va = F64x8::from_slice(&lanes);
        let vp = F64x8::splat(f64::from(pivot_raw) / 10.0);
        let gt = va.gt(vp);
        for (&g, &lane) in gt.0.iter().zip(lanes.iter()) {
            prop_assert_eq!(g, lane > f64::from(pivot_raw) / 10.0);
        }
    }

    /// `indices` + `splat` + masks round-trip: selecting lane indices below
    /// a bound equals the scalar enumeration.
    #[test]
    fn indices_splat_mask_roundtrip(base in 0u64..1_000, bound in 0u64..12) {
        let idx = U64x8::indices(base);
        let mask = idx.lt(U64x8::splat(base + bound));
        let expect: [bool; LANE_WIDTH] = core::array::from_fn(|j| (j as u64) < bound);
        prop_assert_eq!(Mask8(expect), mask);
    }
}
