//! Structural out-of-order core model.
//!
//! The model tracks individual instructions through fetch, dispatch, issue
//! and commit each cycle, with the finite resources of Table 1: fetch queue,
//! ROB, issue queue, load/store queue, per-class functional units, and a
//! front-end pipeline whose depth is paid again after every branch
//! misprediction. It is intentionally a *structural* model rather than a
//! literal M5 port (no explicit rename registers, no wrong-path execution —
//! the functional-first stream only contains correct-path instructions, so a
//! misprediction is modeled by stalling fetch until the branch resolves, the
//! same simplification the interval model's penalty formula captures).

use std::collections::VecDeque;

use iss_branch::{BranchPredictorConfig, BranchStats, BranchUnit};
use iss_mem::MemoryHierarchy;
use iss_trace::{
    DynInst, FxHashMap, InstructionStream, SyncController, SyncOp, ThreadId, NUM_ARCH_REGS,
};

use crate::config::DetailedCoreConfig;
use crate::stats::DetailedCoreStats;

const LINE_SHIFT: u32 = 6;

#[derive(Debug, Clone)]
struct FetchEntry {
    inst: DynInst,
    /// Cycle at which the instruction has traversed the front-end pipeline
    /// and may dispatch.
    dispatch_ready_at: u64,
}

/// Sequence numbers of the in-flight producers one instruction waits for:
/// at most two register sources plus one store-to-load memory dependence, so
/// the list lives inline in the ROB entry — dispatching an instruction
/// allocates nothing.
#[derive(Debug, Clone, Copy, Default)]
struct DepList {
    seqs: [u64; 3],
    len: u8,
}

impl DepList {
    #[inline]
    fn push(&mut self, seq: u64) {
        self.seqs[usize::from(self.len)] = seq;
        self.len += 1;
    }

    #[inline]
    fn as_slice(&self) -> &[u64] {
        &self.seqs[..usize::from(self.len)]
    }
}

#[derive(Debug, Clone)]
struct RobEntry {
    inst: DynInst,
    seq: u64,
    /// In-flight producers this instruction waits for.
    deps: DepList,
    issued: bool,
    complete_at: u64,
}

/// One core simulated cycle-accurately.
#[derive(Debug, Clone)]
pub struct OutOfOrderCore<S> {
    core_id: ThreadId,
    config: DetailedCoreConfig,
    branch_unit: BranchUnit,
    stream: S,
    stream_exhausted: bool,

    fetch_queue: VecDeque<FetchEntry>,
    fetch_blocked_until: u64,
    /// Fetch is waiting for this (mispredicted) branch to resolve.
    fetch_wait_branch: Option<u64>,

    rob: VecDeque<RobEntry>,
    iq_occupancy: usize,
    lsq_occupancy: usize,
    /// Dispatch is blocked behind an uncommitted serializing instruction.
    serialize_stall: bool,

    /// In-flight instructions: seq -> completion cycle (None = not yet
    /// issued). Entries are removed at commit.
    in_flight: FxHashMap<u64, Option<u64>>,
    /// Latest in-flight producer of each register, indexed by register id —
    /// registers are a small dense space, so no hashing on the dispatch path.
    reg_producer: Vec<Option<u64>>,
    /// Latest in-flight store to each cache line.
    store_producer: FxHashMap<u64, u64>,

    stats: DetailedCoreStats,
    done: bool,
}

impl<S: InstructionStream> OutOfOrderCore<S> {
    /// Creates a detailed core fed by `stream`.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid.
    #[must_use]
    pub fn new(
        core_id: ThreadId,
        config: &DetailedCoreConfig,
        branch_config: &BranchPredictorConfig,
        stream: S,
    ) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid detailed core configuration: {e}"));
        OutOfOrderCore {
            core_id,
            config: *config,
            branch_unit: BranchUnit::new(branch_config),
            stream,
            stream_exhausted: false,
            fetch_queue: VecDeque::new(),
            fetch_blocked_until: 0,
            fetch_wait_branch: None,
            rob: VecDeque::new(),
            iq_occupancy: 0,
            lsq_occupancy: 0,
            serialize_stall: false,
            in_flight: FxHashMap::default(),
            reg_producer: vec![None; NUM_ARCH_REGS as usize],
            store_producer: FxHashMap::default(),
            stats: DetailedCoreStats::default(),
            done: false,
        }
    }

    /// The core index.
    #[must_use]
    pub fn core_id(&self) -> ThreadId {
        self.core_id
    }

    /// Whether the core has committed its entire stream.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> DetailedCoreStats {
        self.stats
    }

    /// Branch prediction statistics.
    #[must_use]
    pub fn branch_stats(&self) -> BranchStats {
        self.branch_unit.stats()
    }

    /// Current reorder-buffer occupancy (for tests).
    #[must_use]
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// The branch-prediction front-end (for checkpointing its warm tables).
    #[must_use]
    pub fn branch_unit(&self) -> &BranchUnit {
        &self.branch_unit
    }

    /// Replaces the branch front-end with `unit` (typically a warm snapshot
    /// carried over from an outgoing model at a hybrid swap).
    pub fn install_branch_unit(&mut self, unit: BranchUnit) {
        self.branch_unit = unit;
    }

    /// The instruction source feeding this core.
    #[must_use]
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// Instructions fetched from the stream but not yet committed, oldest
    /// first: the ROB contents (dispatched, in flight) followed by the fetch
    /// queue. At a checkpoint these must be replayed to the incoming model.
    #[must_use]
    pub fn pending_insts(&self) -> Vec<DynInst> {
        self.rob
            .iter()
            .map(|e| e.inst)
            .chain(self.fetch_queue.iter().map(|fe| fe.inst))
            .collect()
    }

    /// Consumes the core into its transferable warm state. `now` is the
    /// machine clock (the detailed model keeps no per-core clock for live
    /// cores); the pending instructions are the same list
    /// [`OutOfOrderCore::pending_insts`] reports. Nothing is cloned.
    #[must_use]
    pub fn into_warm_parts(self, now: u64) -> crate::multicore::CoreWarmParts<S> {
        let pending: Vec<DynInst> = self
            .rob
            .iter()
            .map(|e| e.inst)
            .chain(self.fetch_queue.iter().map(|fe| fe.inst))
            .collect();
        crate::multicore::CoreWarmParts {
            resume: iss_trace::CoreResume {
                time: if self.done { self.stats.cycles } else { now },
                instructions: self.stats.instructions,
                done: self.done,
            },
            pending,
            stream: self.stream,
            branch: Some(self.branch_unit),
        }
    }

    /// Positions a freshly built core at a checkpoint's resume point. The
    /// core's fetch stage stays idle until the resume time is reached (the
    /// outgoing model may have run this core ahead of the machine clock), and
    /// the retired-instruction counter continues from the checkpoint base.
    /// In-flight microarchitectural state (ROB/IQ/LSQ occupancy) restarts
    /// empty; the replayed instructions refill it.
    pub fn resume_at(&mut self, resume: &iss_trace::CoreResume) {
        self.fetch_blocked_until = resume.time;
        self.stats.instructions = resume.instructions;
        if resume.done {
            self.done = true;
            self.stats.cycles = resume.time;
        }
    }

    /// Simulates one cycle at time `now`. Stages run commit → issue →
    /// dispatch → fetch so that an instruction needs at least one cycle per
    /// stage.
    pub fn step_cycle(&mut self, now: u64, mem: &mut MemoryHierarchy, sync: &mut SyncController) {
        if self.done {
            return;
        }
        self.commit(now);
        self.issue(now, mem);
        self.dispatch(now, sync);
        self.fetch(now, mem);

        if self.stream_exhausted && self.fetch_queue.is_empty() && self.rob.is_empty() {
            self.done = true;
            self.stats.cycles = now + 1;
            sync.mark_finished(self.core_id);
        }
    }

    fn commit(&mut self, now: u64) {
        let mut committed = 0;
        while committed < self.config.dispatch_width {
            let Some(head) = self.rob.front() else { break };
            if head.issued && head.complete_at <= now {
                let e = self.rob.pop_front().expect("head exists");
                if e.inst.mem.is_some() {
                    self.lsq_occupancy -= 1;
                }
                if e.inst.is_serializing() {
                    self.serialize_stall = false;
                }
                self.in_flight.remove(&e.seq);
                self.stats.instructions += 1;
                committed += 1;
            } else {
                break;
            }
        }
        if committed == 0 {
            self.stats.commit_stall_cycles += 1;
        }
    }

    fn deps_ready(&self, deps: &DepList, now: u64) -> bool {
        deps.as_slice()
            .iter()
            .all(|seq| match self.in_flight.get(seq) {
                None => true,               // already committed
                Some(Some(t)) => *t <= now, // issued, completes in time
                Some(None) => false,        // not yet issued
            })
    }

    fn issue(&mut self, now: u64, mem: &mut MemoryHierarchy) {
        let mut issued = 0;
        let mut int_used = 0;
        let mut mem_used = 0;
        let mut fp_used = 0;
        let core = self.core_id;
        for idx in 0..self.rob.len() {
            if issued >= self.config.issue_width {
                break;
            }
            let (op, is_issued) = {
                let e = &self.rob[idx];
                (e.inst.op, e.issued)
            };
            if is_issued {
                continue;
            }
            let unit_available = if op.is_memory() {
                mem_used < self.config.mem_units
            } else if op.is_float() {
                fp_used < self.config.fp_units
            } else {
                int_used < self.config.int_units
            };
            if !unit_available {
                continue;
            }
            let ready = {
                let e = &self.rob[idx];
                self.deps_ready(&e.deps, now)
            };
            if !ready {
                continue;
            }
            // Issue: loads and stores access the memory hierarchy now, which
            // is what lets independent misses overlap (MLP) and contend for
            // the shared L2 and DRAM bandwidth.
            let extra = {
                let e = &self.rob[idx];
                match &e.inst.mem {
                    Some(acc) => {
                        let resp = mem.access_data(core, acc.vaddr, acc.is_store, now);
                        if acc.is_store {
                            self.stats.stores += 1;
                            // Stores retire from the store buffer off the
                            // critical path; their miss latency is not part
                            // of the dependence chain.
                            0
                        } else {
                            self.stats.loads += 1;
                            resp.latency
                        }
                    }
                    None => 0,
                }
            };
            let e = &mut self.rob[idx];
            e.issued = true;
            e.complete_at = now + e.inst.exec_latency() + extra;
            let seq = e.seq;
            let complete_at = e.complete_at;
            self.in_flight.insert(seq, Some(complete_at));
            self.iq_occupancy -= 1;
            if self.fetch_wait_branch == Some(seq) {
                // The mispredicted branch resolves when it executes; fetch is
                // redirected the cycle after. (The front-end refill itself is
                // already modeled by the fetch-to-dispatch latency of the
                // newly fetched instructions.)
                self.fetch_blocked_until = self.fetch_blocked_until.max(complete_at + 1);
                self.fetch_wait_branch = None;
            }
            if op.is_memory() {
                mem_used += 1;
            } else if op.is_float() {
                fp_used += 1;
            } else {
                int_used += 1;
            }
            issued += 1;
        }
    }

    fn dispatch(&mut self, now: u64, sync: &mut SyncController) {
        if sync.is_blocked(self.core_id) {
            self.stats.sync_blocked_cycles += 1;
            self.stats.dispatch_stall_cycles += 1;
            return;
        }
        let mut dispatched = 0;
        while dispatched < self.config.dispatch_width {
            let ready = match self.fetch_queue.front() {
                Some(fe) => fe.dispatch_ready_at <= now,
                None => false,
            };
            if !ready {
                break;
            }
            if self.serialize_stall {
                break;
            }
            let is_serializing = self.fetch_queue.front().map(|fe| fe.inst.is_serializing());
            if is_serializing == Some(true) && !self.rob.is_empty() {
                // Serializing instructions wait for the window to drain.
                self.stats.serializations += 1;
                break;
            }
            if self.rob.len() >= self.config.rob_entries
                || self.iq_occupancy >= self.config.issue_queue_entries
            {
                break;
            }
            let is_mem = self
                .fetch_queue
                .front()
                .map(|fe| fe.inst.mem.is_some())
                .unwrap_or(false);
            if is_mem && self.lsq_occupancy >= self.config.lsq_entries {
                break;
            }
            // Synchronization decisions happen at dispatch of the marked
            // instruction (functional-first).
            if let Some(op) = self.fetch_queue.front().and_then(|fe| fe.inst.sync) {
                match op {
                    SyncOp::BarrierArrive { id } => {
                        sync.arrive_barrier(self.core_id, id);
                    }
                    SyncOp::LockAcquire { id } => {
                        if !sync.try_acquire(self.core_id, id) {
                            break;
                        }
                    }
                    SyncOp::LockRelease { id } => sync.release(self.core_id, id),
                    SyncOp::ThreadSpawn => {}
                    SyncOp::ThreadJoin { child } => {
                        if !sync.join(self.core_id, child) {
                            break;
                        }
                    }
                }
            }

            let fe = self.fetch_queue.pop_front().expect("front checked above");
            let inst = fe.inst;
            let seq = inst.seq;
            // Capture data dependences on in-flight producers.
            let mut deps = DepList::default();
            for src in inst.src_regs() {
                if let Some(Some(pseq)) = self.reg_producer.get(src as usize).copied() {
                    if self.in_flight.contains_key(&pseq) {
                        deps.push(pseq);
                    }
                }
            }
            if let Some(acc) = &inst.mem {
                if !acc.is_store {
                    if let Some(&sseq) = self.store_producer.get(&(acc.vaddr >> LINE_SHIFT)) {
                        if self.in_flight.contains_key(&sseq) {
                            deps.push(sseq);
                        }
                    }
                }
            }
            if let Some(dst) = inst.dst {
                let i = dst as usize;
                if i >= self.reg_producer.len() {
                    // Beyond the architectural set: only hand-built test
                    // instructions get here; grow once and keep going.
                    self.reg_producer.resize(i + 1, None);
                }
                self.reg_producer[i] = Some(seq);
            }
            if let Some(acc) = &inst.mem {
                if acc.is_store {
                    self.store_producer.insert(acc.vaddr >> LINE_SHIFT, seq);
                }
                self.lsq_occupancy += 1;
            }
            if inst.is_serializing() {
                self.serialize_stall = true;
            }
            self.in_flight.insert(seq, None);
            self.iq_occupancy += 1;
            self.rob.push_back(RobEntry {
                inst,
                seq,
                deps,
                issued: false,
                complete_at: 0,
            });
            dispatched += 1;
        }
        if dispatched == 0 {
            self.stats.dispatch_stall_cycles += 1;
        }
    }

    fn fetch(&mut self, now: u64, mem: &mut MemoryHierarchy) {
        if now < self.fetch_blocked_until || self.fetch_wait_branch.is_some() {
            self.stats.fetch_stall_cycles += 1;
            return;
        }
        let mut fetched = 0;
        while fetched < self.config.fetch_width
            && self.fetch_queue.len() < self.config.fetch_queue_entries
            && !self.stream_exhausted
        {
            let Some(inst) = self.stream.next_inst() else {
                self.stream_exhausted = true;
                break;
            };
            let resp = mem.access_instruction(self.core_id, inst.pc, now);
            let dispatch_ready_at = now + self.config.frontend_pipeline_depth + resp.latency;
            let mut mispredicted = false;
            if inst.is_branch() {
                if let Some(info) = inst.branch {
                    let outcome = self.branch_unit.predict_and_update(inst.pc, &info);
                    mispredicted = outcome.mispredicted;
                }
            }
            let seq = inst.seq;
            self.fetch_queue.push_back(FetchEntry {
                inst,
                dispatch_ready_at,
            });
            fetched += 1;
            if mispredicted {
                // The front-end fetches down the wrong path until the branch
                // resolves; correct-path fetch resumes only afterwards.
                self.stats.branch_mispredictions += 1;
                self.fetch_wait_branch = Some(seq);
                break;
            }
            if resp.latency > 0 {
                // An I-cache/I-TLB miss starves fetch for the miss duration.
                self.fetch_blocked_until = now + resp.latency;
                break;
            }
        }
        if fetched == 0 {
            self.stats.fetch_stall_cycles += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iss_mem::MemoryConfig;
    use iss_trace::{catalog, SyntheticStream};

    fn run_one(
        name: &str,
        len: u64,
        branch_cfg: &BranchPredictorConfig,
        mem_cfg: &MemoryConfig,
    ) -> DetailedCoreStats {
        let profile = catalog::profile(name).unwrap();
        let stream = SyntheticStream::new(&profile, 0, 17, len);
        let mut core = OutOfOrderCore::new(
            0,
            &DetailedCoreConfig::hpca2010_baseline(),
            branch_cfg,
            stream,
        );
        let mut mem = MemoryHierarchy::new(mem_cfg);
        let mut sync = SyncController::new(1);
        let mut now = 0;
        while !core.is_done() && now < 20_000_000 {
            core.step_cycle(now, &mut mem, &mut sync);
            now += 1;
        }
        assert!(core.is_done(), "core must finish");
        core.stats()
    }

    #[test]
    fn commits_every_instruction() {
        let stats = run_one(
            "gzip",
            5_000,
            &BranchPredictorConfig::hpca2010_baseline(),
            &MemoryConfig::hpca2010_baseline(1),
        );
        assert_eq!(stats.instructions, 5_000);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn ipc_is_bounded_by_dispatch_width() {
        let stats = run_one(
            "swim",
            10_000,
            &BranchPredictorConfig::perfect(),
            &MemoryConfig::hpca2010_baseline(1)
                .with_perfect_instruction_side()
                .with_perfect_data_side(),
        );
        let ipc = stats.ipc();
        assert!(
            ipc > 1.0,
            "IPC {ipc} should be high with perfect components"
        );
        assert!(ipc <= 4.0, "IPC {ipc} cannot exceed the 4-wide commit");
    }

    #[test]
    fn branch_mispredictions_cost_cycles() {
        let perfect = run_one(
            "vpr",
            10_000,
            &BranchPredictorConfig::perfect(),
            &MemoryConfig::hpca2010_baseline(1)
                .with_perfect_instruction_side()
                .with_perfect_data_side(),
        );
        let real = run_one(
            "vpr",
            10_000,
            &BranchPredictorConfig::hpca2010_baseline(),
            &MemoryConfig::hpca2010_baseline(1)
                .with_perfect_instruction_side()
                .with_perfect_data_side(),
        );
        assert!(real.branch_mispredictions > 0);
        assert!(real.cycles > perfect.cycles);
    }

    #[test]
    fn memory_misses_cost_cycles() {
        let perfect = run_one(
            "mcf",
            10_000,
            &BranchPredictorConfig::perfect(),
            &MemoryConfig::hpca2010_baseline(1)
                .with_perfect_instruction_side()
                .with_perfect_data_side(),
        );
        let real = run_one(
            "mcf",
            10_000,
            &BranchPredictorConfig::perfect(),
            &MemoryConfig::hpca2010_baseline(1).with_perfect_instruction_side(),
        );
        assert!(
            real.cycles > perfect.cycles * 2,
            "mcf must be strongly memory-bound"
        );
    }

    #[test]
    fn loads_and_stores_are_counted() {
        let stats = run_one(
            "gcc",
            8_000,
            &BranchPredictorConfig::hpca2010_baseline(),
            &MemoryConfig::hpca2010_baseline(1),
        );
        assert!(stats.loads > 0);
        assert!(stats.stores > 0);
        assert!(stats.loads + stats.stores < stats.instructions);
    }

    #[test]
    fn serializing_instructions_are_observed_in_full_system_profiles() {
        let stats = run_one(
            "x264",
            20_000,
            &BranchPredictorConfig::perfect(),
            &MemoryConfig::hpca2010_baseline(1)
                .with_perfect_instruction_side()
                .with_perfect_data_side(),
        );
        assert!(stats.serializations > 0 || stats.instructions == 20_000);
    }
}
