//! Statistics of the detailed core models.

use serde::{Deserialize, Serialize};

/// Statistics accumulated by one detailed (or one-IPC) core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetailedCoreStats {
    /// Instructions committed.
    pub instructions: u64,
    /// Cycles until this core committed its last instruction.
    pub cycles: u64,
    /// Cycles in which no instruction was committed.
    pub commit_stall_cycles: u64,
    /// Cycles fetch was stalled (I-cache miss, misprediction redirect, fetch
    /// queue full).
    pub fetch_stall_cycles: u64,
    /// Cycles dispatch was stalled (ROB/IQ/LSQ full, serialization, or
    /// synchronization).
    pub dispatch_stall_cycles: u64,
    /// Cycles the core was blocked on synchronization.
    pub sync_blocked_cycles: u64,
    /// Branch mispredictions observed at fetch.
    pub branch_mispredictions: u64,
    /// Pipeline squashes due to serializing instructions.
    pub serializations: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
}

impl DetailedCoreStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Final per-core result of a detailed simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetailedCoreResult {
    /// Core index.
    pub core: usize,
    /// Instructions committed by this core.
    pub instructions: u64,
    /// Cycle at which this core finished.
    pub cycles: u64,
    /// Detailed statistics.
    pub stats: DetailedCoreStats,
}

impl DetailedCoreResult {
    /// Instructions per cycle of this core.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_is_instructions_over_cycles() {
        let s = DetailedCoreStats {
            instructions: 300,
            cycles: 100,
            ..Default::default()
        };
        assert!((s.ipc() - 3.0).abs() < 1e-12);
        let r = DetailedCoreResult {
            core: 0,
            instructions: 300,
            cycles: 100,
            stats: s,
        };
        assert!((r.ipc() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_zero_ipc() {
        assert_eq!(DetailedCoreStats::default().ipc(), 0.0);
    }
}
