//! Multi-core wrappers around the detailed and one-IPC core models.
//!
//! Both simulators share the global-cycle structure of the interval
//! simulator: all cores advance in lock-step over a shared memory hierarchy
//! and a shared synchronization controller, which is what produces the
//! resource-contention and thread-interleaving behaviour the paper's
//! multi-core experiments measure.

use iss_trace::host_time::HostTimer;

use serde::{Deserialize, Serialize};

use iss_branch::{BranchPredictorConfig, BranchStats, BranchUnit};
use iss_mem::{MemoryConfig, MemoryHierarchy, MemoryStats};
use iss_trace::{InstructionStream, SyncController, SyntheticStream, ThreadedWorkload};

use crate::config::DetailedCoreConfig;
use crate::oneipc::OneIpcCore;
use crate::oo_core::OutOfOrderCore;
use crate::stats::DetailedCoreResult;

/// Result of a detailed (or one-IPC) multi-core simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetailedSimResult {
    /// Cycles until the last core finished.
    pub cycles: u64,
    /// Per-core results.
    pub per_core: Vec<DetailedCoreResult>,
    /// Per-core branch prediction statistics (empty for the one-IPC model,
    /// which does not predict branches).
    pub branch: Vec<BranchStats>,
    /// Shared memory hierarchy statistics.
    pub memory: MemoryStats,
    /// Host wall-clock seconds the simulation took.
    pub host_seconds: f64,
    /// Total instructions simulated.
    pub total_instructions: u64,
}

impl DetailedSimResult {
    /// Aggregate instructions per cycle over the whole chip.
    #[must_use]
    pub fn aggregate_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_instructions as f64 / self.cycles as f64
        }
    }

    /// Simulated instructions per host second.
    #[must_use]
    pub fn instructions_per_host_second(&self) -> f64 {
        if self.host_seconds <= 0.0 {
            0.0
        } else {
            self.total_instructions as f64 / self.host_seconds
        }
    }
}

/// Transferable warm state of one core, extracted by *consuming* the core:
/// nothing in here is cloned, which is what makes frequent timed→functional
/// transitions in sampled simulation cheap.
#[derive(Debug)]
pub struct CoreWarmParts<S> {
    /// The core's resume point (clock, retired instructions, done flag).
    pub resume: iss_trace::CoreResume,
    /// Instructions fetched but not yet committed, oldest first.
    pub pending: Vec<iss_trace::DynInst>,
    /// The core's instruction stream, positioned after the pending
    /// instructions.
    pub stream: S,
    /// The warm branch-prediction front-end (`None` for the one-IPC model,
    /// which predicts no branches).
    pub branch: Option<BranchUnit>,
}

/// Transferable warm state of a whole machine, extracted by *consuming* the
/// simulator — the clone-free counterpart of a lean checkpoint, for callers
/// that own the machine.
#[derive(Debug)]
pub struct WarmParts<S> {
    /// The machine clock (absolute simulated cycles).
    pub machine_time: u64,
    /// Per-core warm state, in core order.
    pub cores: Vec<CoreWarmParts<S>>,
    /// The shared memory hierarchy, moved out intact.
    pub memory: MemoryHierarchy,
    /// The shared synchronization state, moved out intact.
    pub sync: SyncController,
}

/// Cycle-accurate multi-core simulator (the paper's baseline).
#[derive(Debug, Clone)]
pub struct DetailedSimulator<S> {
    cores: Vec<OutOfOrderCore<S>>,
    mem: MemoryHierarchy,
    sync: SyncController,
    cycle: u64,
    /// Host wall-clock seconds accumulated across all advancement calls.
    host_seconds: f64,
}

impl<S: InstructionStream> DetailedSimulator<S> {
    /// Builds a simulator from per-core streams.
    ///
    /// # Panics
    ///
    /// Panics if the stream count does not match the configuration, or if any
    /// configuration is invalid.
    #[must_use]
    pub fn new(
        core_config: &DetailedCoreConfig,
        branch_config: &BranchPredictorConfig,
        mem_config: &MemoryConfig,
        streams: Vec<S>,
        sync: SyncController,
    ) -> Self {
        assert_eq!(
            streams.len(),
            mem_config.num_cores,
            "one stream per core is required"
        );
        assert_eq!(
            streams.len(),
            sync.num_threads(),
            "sync controller must cover every core"
        );
        Self::with_memory(
            core_config,
            branch_config,
            streams,
            sync,
            MemoryHierarchy::new(mem_config),
        )
    }

    /// Like [`DetailedSimulator::new`], but adopts an existing (typically
    /// warm) memory hierarchy instead of building a cold one — the restore
    /// path takes this so a checkpointed hierarchy is *moved* in rather
    /// than a fresh multi-megabyte hierarchy being allocated and
    /// immediately replaced.
    ///
    /// # Panics
    ///
    /// Panics if the stream, synchronization and hierarchy core counts
    /// disagree or any configuration is invalid.
    #[must_use]
    pub fn with_memory(
        core_config: &DetailedCoreConfig,
        branch_config: &BranchPredictorConfig,
        streams: Vec<S>,
        sync: SyncController,
        memory: MemoryHierarchy,
    ) -> Self {
        assert_eq!(
            streams.len(),
            memory.num_cores(),
            "one stream per core is required"
        );
        assert_eq!(
            streams.len(),
            sync.num_threads(),
            "sync controller must cover every core"
        );
        let cores = streams
            .into_iter()
            .enumerate()
            .map(|(i, s)| OutOfOrderCore::new(i, core_config, branch_config, s))
            .collect();
        DetailedSimulator {
            cores,
            mem: memory,
            sync,
            cycle: 0,
            host_seconds: 0.0,
        }
    }

    /// Number of simulated cores.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Whether every core has committed its entire stream.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.cores.iter().all(OutOfOrderCore::is_done)
    }

    /// Total instructions committed so far across all cores.
    #[must_use]
    pub fn total_retired(&self) -> u64 {
        self.cores.iter().map(|c| c.stats().instructions).sum()
    }

    /// The current machine cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The simulated cores (read-only, for checkpointing).
    #[must_use]
    pub fn cores(&self) -> &[OutOfOrderCore<S>] {
        &self.cores
    }

    /// The shared memory hierarchy (read-only, for checkpointing).
    #[must_use]
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// The shared synchronization controller (read-only, for checkpointing).
    #[must_use]
    pub fn sync_controller(&self) -> &SyncController {
        &self.sync
    }

    /// Runs to completion.
    pub fn run(&mut self) -> DetailedSimResult {
        self.run_with_limit(u64::MAX)
    }

    /// Runs until every core finished or `max_cycles` elapsed.
    pub fn run_with_limit(&mut self, max_cycles: u64) -> DetailedSimResult {
        let start = HostTimer::start();
        self.advance(max_cycles, u64::MAX);
        self.host_seconds += start.elapsed_seconds();
        self.result()
    }

    /// Advances until at least `insts` more instructions commit chip-wide
    /// (or every core finishes) — the hybrid swap controller's quantum.
    pub fn step_interval(&mut self, insts: u64) {
        let start = HostTimer::start();
        let target = self.total_retired().saturating_add(insts);
        self.advance(u64::MAX, target);
        self.host_seconds += start.elapsed_seconds();
    }

    fn advance(&mut self, max_cycles: u64, inst_target: u64) {
        while self.cycle < max_cycles && !self.cores.iter().all(OutOfOrderCore::is_done) {
            if inst_target != u64::MAX && self.total_retired() >= inst_target {
                break;
            }
            for core in &mut self.cores {
                core.step_cycle(self.cycle, &mut self.mem, &mut self.sync);
            }
            self.cycle += 1;
        }
    }

    /// Installs checkpointed warm state into a freshly built simulator (see
    /// the interval simulator's `restore_warm` for the contract).
    ///
    /// # Panics
    ///
    /// Panics if the transferred state does not cover every core.
    pub fn restore_warm(
        &mut self,
        mem: MemoryHierarchy,
        machine_time: u64,
        per_core: &[iss_trace::CoreResume],
        branch: Option<&[iss_branch::BranchUnit]>,
    ) {
        assert_eq!(
            mem.num_cores(),
            self.cores.len(),
            "transferred hierarchy must cover every core"
        );
        self.mem = mem;
        self.resume_cores(machine_time, per_core, branch);
    }

    /// The core-resume half of [`DetailedSimulator::restore_warm`], for
    /// simulators built over an already-transferred hierarchy
    /// ([`DetailedSimulator::with_memory`]).
    ///
    /// # Panics
    ///
    /// Panics if the transferred state does not cover every core.
    pub fn resume_cores(
        &mut self,
        machine_time: u64,
        per_core: &[iss_trace::CoreResume],
        branch: Option<&[BranchUnit]>,
    ) {
        assert_eq!(
            per_core.len(),
            self.cores.len(),
            "one resume point per core is required"
        );
        self.cycle = machine_time;
        for (i, core) in self.cores.iter_mut().enumerate() {
            core.resume_at(&per_core[i]);
            if let Some(units) = branch {
                core.install_branch_unit(units[i].clone());
            }
        }
    }

    /// Consumes the simulator into its transferable warm state without
    /// cloning the memory hierarchy, the streams or the branch tables.
    #[must_use]
    pub fn into_warm_parts(self) -> WarmParts<S> {
        let now = self.cycle;
        WarmParts {
            machine_time: now,
            cores: self
                .cores
                .into_iter()
                .map(|c| c.into_warm_parts(now))
                .collect(),
            memory: self.mem,
            sync: self.sync,
        }
    }

    /// Builds the result for the current state (accumulated host time).
    #[must_use]
    pub fn result(&self) -> DetailedSimResult {
        let per_core: Vec<DetailedCoreResult> = self
            .cores
            .iter()
            .map(|c| {
                let stats = c.stats();
                DetailedCoreResult {
                    core: c.core_id(),
                    instructions: stats.instructions,
                    cycles: if c.is_done() {
                        stats.cycles
                    } else {
                        self.cycle
                    },
                    stats,
                }
            })
            .collect();
        let total_instructions = per_core.iter().map(|c| c.instructions).sum();
        DetailedSimResult {
            cycles: per_core.iter().map(|c| c.cycles).max().unwrap_or(0),
            per_core,
            branch: self
                .cores
                .iter()
                .map(OutOfOrderCore::branch_stats)
                .collect(),
            memory: self.mem.stats(),
            host_seconds: self.host_seconds,
            total_instructions,
        }
    }
}

impl DetailedSimulator<SyntheticStream> {
    /// Convenience constructor from a [`ThreadedWorkload`].
    #[must_use]
    pub fn from_workload(
        core_config: &DetailedCoreConfig,
        branch_config: &BranchPredictorConfig,
        mem_config: &MemoryConfig,
        workload: ThreadedWorkload,
    ) -> Self {
        let (streams, sync) = workload.into_parts();
        Self::new(core_config, branch_config, mem_config, streams, sync)
    }
}

/// Multi-core wrapper around the one-IPC model.
#[derive(Debug, Clone)]
pub struct OneIpcSimulator<S> {
    cores: Vec<OneIpcCore<S>>,
    mem: MemoryHierarchy,
    sync: SyncController,
    cycle: u64,
    /// Host wall-clock seconds accumulated across all advancement calls.
    host_seconds: f64,
}

impl<S: InstructionStream> OneIpcSimulator<S> {
    /// Builds a one-IPC simulator from per-core streams.
    ///
    /// # Panics
    ///
    /// Panics if the stream count does not match the configuration.
    #[must_use]
    pub fn new(mem_config: &MemoryConfig, streams: Vec<S>, sync: SyncController) -> Self {
        Self::with_memory(streams, sync, MemoryHierarchy::new(mem_config))
    }

    /// Like [`OneIpcSimulator::new`], but adopts an existing (typically
    /// warm) memory hierarchy instead of building a cold one.
    ///
    /// # Panics
    ///
    /// Panics if the stream, synchronization and hierarchy core counts
    /// disagree.
    #[must_use]
    pub fn with_memory(streams: Vec<S>, sync: SyncController, memory: MemoryHierarchy) -> Self {
        assert_eq!(
            streams.len(),
            memory.num_cores(),
            "one stream per core is required"
        );
        assert_eq!(
            streams.len(),
            sync.num_threads(),
            "sync controller must cover every core"
        );
        let cores = streams
            .into_iter()
            .enumerate()
            .map(|(i, s)| OneIpcCore::new(i, s))
            .collect();
        OneIpcSimulator {
            cores,
            mem: memory,
            sync,
            cycle: 0,
            host_seconds: 0.0,
        }
    }

    /// Whether every core has executed its entire stream.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.cores.iter().all(OneIpcCore::is_done)
    }

    /// Total instructions executed so far across all cores.
    #[must_use]
    pub fn total_retired(&self) -> u64 {
        self.cores.iter().map(|c| c.stats().instructions).sum()
    }

    /// The current machine cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The simulated cores (read-only, for checkpointing).
    #[must_use]
    pub fn cores(&self) -> &[OneIpcCore<S>] {
        &self.cores
    }

    /// The shared memory hierarchy (read-only, for checkpointing).
    #[must_use]
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// The shared synchronization controller (read-only, for checkpointing).
    #[must_use]
    pub fn sync_controller(&self) -> &SyncController {
        &self.sync
    }

    /// Runs to completion (bounded by `max_cycles`).
    pub fn run_with_limit(&mut self, max_cycles: u64) -> DetailedSimResult {
        let start = HostTimer::start();
        self.advance(max_cycles, u64::MAX);
        self.host_seconds += start.elapsed_seconds();
        self.result()
    }

    /// Advances until at least `insts` more instructions execute chip-wide
    /// (or every core finishes) — the hybrid swap controller's quantum.
    pub fn step_interval(&mut self, insts: u64) {
        let start = HostTimer::start();
        let target = self.total_retired().saturating_add(insts);
        self.advance(u64::MAX, target);
        self.host_seconds += start.elapsed_seconds();
    }

    fn advance(&mut self, max_cycles: u64, inst_target: u64) {
        while self.cycle < max_cycles && !self.cores.iter().all(OneIpcCore::is_done) {
            if inst_target != u64::MAX && self.total_retired() >= inst_target {
                break;
            }
            for core in &mut self.cores {
                core.step_cycle(self.cycle, &mut self.mem, &mut self.sync);
            }
            self.cycle += 1;
        }
    }

    /// Installs checkpointed warm state into a freshly built simulator. The
    /// one-IPC model has no branch predictor, so warm branch state (if any)
    /// is dropped here and re-learned if a later swap leaves this model.
    ///
    /// # Panics
    ///
    /// Panics if the transferred state does not cover every core.
    pub fn restore_warm(
        &mut self,
        mem: MemoryHierarchy,
        machine_time: u64,
        per_core: &[iss_trace::CoreResume],
    ) {
        assert_eq!(
            mem.num_cores(),
            self.cores.len(),
            "transferred hierarchy must cover every core"
        );
        self.mem = mem;
        self.resume_cores(machine_time, per_core);
    }

    /// The core-resume half of [`OneIpcSimulator::restore_warm`], for
    /// simulators built over an already-transferred hierarchy
    /// ([`OneIpcSimulator::with_memory`]).
    ///
    /// # Panics
    ///
    /// Panics if the transferred state does not cover every core.
    pub fn resume_cores(&mut self, machine_time: u64, per_core: &[iss_trace::CoreResume]) {
        assert_eq!(
            per_core.len(),
            self.cores.len(),
            "one resume point per core is required"
        );
        self.cycle = machine_time;
        for (i, core) in self.cores.iter_mut().enumerate() {
            core.resume_at(&per_core[i]);
        }
    }

    /// Consumes the simulator into its transferable warm state without
    /// cloning the memory hierarchy or the streams.
    #[must_use]
    pub fn into_warm_parts(self) -> WarmParts<S> {
        WarmParts {
            machine_time: self.cycle,
            cores: self
                .cores
                .into_iter()
                .map(OneIpcCore::into_warm_parts)
                .collect(),
            memory: self.mem,
            sync: self.sync,
        }
    }

    /// Builds the result for the current state (accumulated host time).
    #[must_use]
    pub fn result(&self) -> DetailedSimResult {
        let per_core: Vec<DetailedCoreResult> = self
            .cores
            .iter()
            .map(|c| {
                let stats = c.stats();
                DetailedCoreResult {
                    core: c.core_id(),
                    instructions: stats.instructions,
                    cycles: if c.is_done() {
                        stats.cycles
                    } else {
                        self.cycle
                    },
                    stats,
                }
            })
            .collect();
        let total_instructions = per_core.iter().map(|c| c.instructions).sum();
        DetailedSimResult {
            cycles: per_core.iter().map(|c| c.cycles).max().unwrap_or(0),
            per_core,
            branch: Vec::new(),
            memory: self.mem.stats(),
            host_seconds: self.host_seconds,
            total_instructions,
        }
    }

    /// Runs to completion.
    pub fn run(&mut self) -> DetailedSimResult {
        self.run_with_limit(u64::MAX)
    }
}

impl OneIpcSimulator<SyntheticStream> {
    /// Convenience constructor from a [`ThreadedWorkload`].
    #[must_use]
    pub fn from_workload(mem_config: &MemoryConfig, workload: ThreadedWorkload) -> Self {
        let (streams, sync) = workload.into_parts();
        Self::new(mem_config, streams, sync)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iss_trace::catalog;

    #[test]
    fn detailed_single_core_completes() {
        let p = catalog::spec_profile("gzip").unwrap();
        let w = ThreadedWorkload::single(&p, 1, 5_000);
        let mut sim = DetailedSimulator::from_workload(
            &DetailedCoreConfig::hpca2010_baseline(),
            &BranchPredictorConfig::hpca2010_baseline(),
            &MemoryConfig::hpca2010_baseline(1),
            w,
        );
        let r = sim.run();
        assert_eq!(r.total_instructions, 5_000);
        assert!(r.per_core[0].ipc() > 0.1 && r.per_core[0].ipc() <= 4.0);
    }

    #[test]
    fn detailed_multithreaded_finishes_with_synchronization() {
        let p = catalog::parsec_profile("streamcluster").unwrap();
        let w = ThreadedWorkload::multithreaded(&p, 2, 3, 30_000);
        let mut sim = DetailedSimulator::from_workload(
            &DetailedCoreConfig::hpca2010_baseline(),
            &BranchPredictorConfig::hpca2010_baseline(),
            &MemoryConfig::hpca2010_baseline(2),
            w,
        );
        let r = sim.run_with_limit(50_000_000);
        assert_eq!(r.total_instructions, 30_000);
        assert_eq!(r.per_core.len(), 2);
    }

    #[test]
    fn one_ipc_is_never_faster_than_one() {
        let p = catalog::spec_profile("gcc").unwrap();
        let w = ThreadedWorkload::single(&p, 1, 5_000);
        let mut sim = OneIpcSimulator::from_workload(&MemoryConfig::hpca2010_baseline(1), w);
        let r = sim.run();
        assert!(r.per_core[0].ipc() <= 1.0 + 1e-9);
        assert_eq!(r.total_instructions, 5_000);
    }

    #[test]
    fn detailed_beats_one_ipc_on_high_ilp_code() {
        let p = catalog::spec_profile("mesa").unwrap();
        let detailed = {
            let w = ThreadedWorkload::single(&p, 1, 5_000);
            DetailedSimulator::from_workload(
                &DetailedCoreConfig::hpca2010_baseline(),
                &BranchPredictorConfig::hpca2010_baseline(),
                &MemoryConfig::hpca2010_baseline(1),
                w,
            )
            .run()
        };
        let one_ipc = {
            let w = ThreadedWorkload::single(&p, 1, 5_000);
            OneIpcSimulator::from_workload(&MemoryConfig::hpca2010_baseline(1), w).run()
        };
        assert!(
            detailed.per_core[0].ipc() > one_ipc.per_core[0].ipc(),
            "a 4-wide out-of-order core must outperform the one-IPC model on ILP-rich code"
        );
    }

    #[test]
    #[should_panic(expected = "one stream per core")]
    fn mismatched_streams_panic() {
        let p = catalog::spec_profile("gcc").unwrap();
        let w = ThreadedWorkload::single(&p, 1, 100);
        let _ = DetailedSimulator::from_workload(
            &DetailedCoreConfig::hpca2010_baseline(),
            &BranchPredictorConfig::hpca2010_baseline(),
            &MemoryConfig::hpca2010_baseline(2),
            w,
        );
    }
}
