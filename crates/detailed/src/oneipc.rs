//! The one-IPC core model.
//!
//! Section 6 of the paper notes that "a common assumption is to assume that
//! all cores execute one instruction per cycle (i.e., a non-memory IPC equal
//! to one)" and positions interval simulation as a more accurate but equally
//! easy-to-use alternative. This model implements that assumption: every
//! instruction takes one cycle, loads additionally pay their full memory
//! latency serially (no memory-level parallelism, no overlap), and branch
//! mispredictions are ignored.

use iss_mem::MemoryHierarchy;
use iss_trace::{InstructionStream, SyncController, SyncOp, ThreadId};

use crate::stats::DetailedCoreStats;

/// One core simulated with the one-IPC model.
#[derive(Debug, Clone)]
pub struct OneIpcCore<S> {
    core_id: ThreadId,
    stream: S,
    core_time: u64,
    pending: Option<iss_trace::DynInst>,
    stats: DetailedCoreStats,
    done: bool,
}

impl<S: InstructionStream> OneIpcCore<S> {
    /// Creates a one-IPC core fed by `stream`.
    #[must_use]
    pub fn new(core_id: ThreadId, stream: S) -> Self {
        OneIpcCore {
            core_id,
            stream,
            core_time: 0,
            pending: None,
            stats: DetailedCoreStats::default(),
            done: false,
        }
    }

    /// The core index.
    #[must_use]
    pub fn core_id(&self) -> ThreadId {
        self.core_id
    }

    /// Whether the stream has been fully executed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> DetailedCoreStats {
        self.stats
    }

    /// Simulates one cycle at global time `now`.
    pub fn step_cycle(&mut self, now: u64, mem: &mut MemoryHierarchy, sync: &mut SyncController) {
        if self.done || self.core_time > now {
            return;
        }
        self.core_time = now;
        if sync.is_blocked(self.core_id) {
            self.stats.sync_blocked_cycles += 1;
            self.core_time = now + 1;
            return;
        }
        let inst = match self.pending.take().or_else(|| self.stream.next_inst()) {
            Some(i) => i,
            None => {
                self.done = true;
                self.stats.cycles = self.core_time;
                sync.mark_finished(self.core_id);
                return;
            }
        };
        if let Some(op) = inst.sync {
            match op {
                SyncOp::BarrierArrive { id } => {
                    sync.arrive_barrier(self.core_id, id);
                }
                SyncOp::LockAcquire { id } => {
                    if !sync.try_acquire(self.core_id, id) {
                        self.pending = Some(inst);
                        self.core_time = now + 1;
                        return;
                    }
                }
                SyncOp::LockRelease { id } => sync.release(self.core_id, id),
                SyncOp::ThreadSpawn => {}
                SyncOp::ThreadJoin { child } => {
                    if !sync.join(self.core_id, child) {
                        self.pending = Some(inst);
                        self.core_time = now + 1;
                        return;
                    }
                }
            }
        }
        let mut latency = 1;
        if let Some(acc) = inst.mem {
            let resp = mem.access_data(self.core_id, acc.vaddr, acc.is_store, now);
            if acc.is_store {
                self.stats.stores += 1;
            } else {
                self.stats.loads += 1;
                latency += resp.latency;
            }
        }
        self.stats.instructions += 1;
        self.core_time = now + latency;
    }

    /// The per-core simulated time.
    #[must_use]
    pub fn core_time(&self) -> u64 {
        self.core_time
    }

    /// The instruction source feeding this core.
    #[must_use]
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// The instruction (if any) fetched but not yet executed — a lock
    /// acquire or join that could not proceed. At a checkpoint it must be
    /// replayed to the incoming model.
    #[must_use]
    pub fn pending_insts(&self) -> Vec<iss_trace::DynInst> {
        self.pending.iter().copied().collect()
    }

    /// Consumes the core into its transferable warm state (the one-IPC
    /// model predicts no branches, so no branch unit is carried).
    #[must_use]
    pub fn into_warm_parts(self) -> crate::multicore::CoreWarmParts<S> {
        crate::multicore::CoreWarmParts {
            resume: iss_trace::CoreResume {
                time: if self.done {
                    self.stats.cycles
                } else {
                    self.core_time
                },
                instructions: self.stats.instructions,
                done: self.done,
            },
            pending: self.pending.into_iter().collect(),
            stream: self.stream,
            branch: None,
        }
    }

    /// Positions a freshly built core at a checkpoint's resume point: its
    /// clock, its retired-instruction base, and (for finished cores) the
    /// final state.
    pub fn resume_at(&mut self, resume: &iss_trace::CoreResume) {
        self.core_time = resume.time;
        self.stats.instructions = resume.instructions;
        if resume.done {
            self.done = true;
            self.stats.cycles = resume.time;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iss_mem::MemoryConfig;
    use iss_trace::{catalog, SyntheticStream};

    fn run(name: &str, len: u64, mem_cfg: &MemoryConfig) -> DetailedCoreStats {
        let p = catalog::profile(name).unwrap();
        let stream = SyntheticStream::new(&p, 0, 5, len);
        let mut core = OneIpcCore::new(0, stream);
        let mut mem = MemoryHierarchy::new(mem_cfg);
        let mut sync = SyncController::new(1);
        let mut now = 0;
        while !core.is_done() && now < 100_000_000 {
            core.step_cycle(now, &mut mem, &mut sync);
            now += 1;
        }
        core.stats()
    }

    #[test]
    fn perfect_memory_gives_exactly_one_ipc() {
        let stats = run(
            "gzip",
            5_000,
            &MemoryConfig::hpca2010_baseline(1)
                .with_perfect_instruction_side()
                .with_perfect_data_side(),
        );
        assert_eq!(stats.instructions, 5_000);
        let ipc = stats.ipc();
        assert!(
            (ipc - 1.0).abs() < 0.01,
            "one-IPC model must give IPC ~ 1, got {ipc}"
        );
    }

    #[test]
    fn memory_misses_push_ipc_below_one() {
        let stats = run("mcf", 5_000, &MemoryConfig::hpca2010_baseline(1));
        assert!(stats.ipc() < 1.0);
        assert!(stats.loads > 0);
    }

    #[test]
    fn never_exceeds_one_ipc() {
        let stats = run("swim", 5_000, &MemoryConfig::hpca2010_baseline(1));
        assert!(stats.ipc() <= 1.0 + 1e-9);
    }
}
