//! # iss-detailed — cycle-accurate out-of-order baseline simulator
//!
//! Interval simulation is evaluated *against* detailed cycle-accurate
//! simulation (the M5 out-of-order core model in the paper). This crate is
//! that baseline: a structural out-of-order core model with the resources of
//! Table 1 — fetch queue and 7-stage front-end, 256-entry ROB, 128-entry
//! issue queue, 128-entry load/store queue, per-class functional units
//! (4 integer, 4 load/store, 4 floating point), 4-wide dispatch/commit,
//! 6-wide issue and 8-wide fetch — driven by the *same* instruction streams,
//! branch predictors and memory hierarchy as the interval model, so that
//! accuracy (Figures 4-8) and simulation speedup (Figures 9-10) can be
//! measured exactly the way the paper does.
//!
//! The crate also contains the *one-IPC* core model ([`oneipc::OneIpcCore`]),
//! the common simplification the paper positions interval simulation against
//! (Section 6, "a common assumption is to assume that all cores execute one
//! instruction per cycle").
//!
//! ```
//! use iss_branch::BranchPredictorConfig;
//! use iss_detailed::{DetailedCoreConfig, DetailedSimulator};
//! use iss_mem::MemoryConfig;
//! use iss_trace::{catalog, ThreadedWorkload};
//!
//! let profile = catalog::spec_profile("gzip").unwrap();
//! let workload = ThreadedWorkload::single(&profile, 1, 5_000);
//! let mut sim = DetailedSimulator::from_workload(
//!     &DetailedCoreConfig::hpca2010_baseline(),
//!     &BranchPredictorConfig::hpca2010_baseline(),
//!     &MemoryConfig::hpca2010_baseline(1),
//!     workload,
//! );
//! let result = sim.run();
//! assert!(result.per_core[0].ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod multicore;
pub mod oneipc;
pub mod oo_core;
pub mod stats;

pub use config::DetailedCoreConfig;
pub use multicore::{
    CoreWarmParts, DetailedSimResult, DetailedSimulator, OneIpcSimulator, WarmParts,
};
pub use oneipc::OneIpcCore;
pub use oo_core::OutOfOrderCore;
pub use stats::{DetailedCoreResult, DetailedCoreStats};
