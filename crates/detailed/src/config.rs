//! Detailed out-of-order core configuration (Table 1 of the paper).

use serde::{Deserialize, Serialize};

/// Structural parameters of the detailed out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetailedCoreConfig {
    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// Issue queue entries (instructions dispatched but not yet issued).
    pub issue_queue_entries: usize,
    /// Load/store queue entries.
    pub lsq_entries: usize,
    /// Store buffer entries (committed stores draining to the cache).
    pub store_buffer_entries: usize,
    /// Decode/dispatch/commit width.
    pub dispatch_width: u32,
    /// Issue width (instructions starting execution per cycle).
    pub issue_width: u32,
    /// Fetch width.
    pub fetch_width: u32,
    /// Fetch queue entries.
    pub fetch_queue_entries: usize,
    /// Front-end pipeline depth in stages (fetch-to-dispatch latency, and the
    /// refill penalty after a branch misprediction).
    pub frontend_pipeline_depth: u64,
    /// Integer functional units (ALU/multiply/divide).
    pub int_units: u32,
    /// Load/store functional units.
    pub mem_units: u32,
    /// Floating-point functional units.
    pub fp_units: u32,
}

impl DetailedCoreConfig {
    /// The paper's baseline core (Table 1).
    #[must_use]
    pub fn hpca2010_baseline() -> Self {
        DetailedCoreConfig {
            rob_entries: 256,
            issue_queue_entries: 128,
            lsq_entries: 128,
            store_buffer_entries: 64,
            dispatch_width: 4,
            issue_width: 6,
            fetch_width: 8,
            fetch_queue_entries: 16,
            frontend_pipeline_depth: 7,
            int_units: 4,
            mem_units: 4,
            fp_units: 4,
        }
    }

    /// Validates the structural parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("rob_entries", self.rob_entries),
            ("issue_queue_entries", self.issue_queue_entries),
            ("lsq_entries", self.lsq_entries),
            ("store_buffer_entries", self.store_buffer_entries),
            ("fetch_queue_entries", self.fetch_queue_entries),
        ] {
            if v == 0 {
                return Err(format!("detailed core parameter `{name}` must be non-zero"));
            }
        }
        for (name, v) in [
            ("dispatch_width", self.dispatch_width),
            ("issue_width", self.issue_width),
            ("fetch_width", self.fetch_width),
            ("int_units", self.int_units),
            ("mem_units", self.mem_units),
            ("fp_units", self.fp_units),
        ] {
            if v == 0 {
                return Err(format!("detailed core parameter `{name}` must be non-zero"));
            }
        }
        if self.frontend_pipeline_depth == 0 {
            return Err("frontend_pipeline_depth must be non-zero".to_string());
        }
        if self.issue_queue_entries > self.rob_entries {
            return Err("the issue queue cannot be larger than the ROB".to_string());
        }
        Ok(())
    }
}

impl Default for DetailedCoreConfig {
    fn default() -> Self {
        Self::hpca2010_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let c = DetailedCoreConfig::hpca2010_baseline();
        c.validate().unwrap();
        assert_eq!(c.rob_entries, 256);
        assert_eq!(c.issue_queue_entries, 128);
        assert_eq!(c.lsq_entries, 128);
        assert_eq!(c.store_buffer_entries, 64);
        assert_eq!(c.dispatch_width, 4);
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.fetch_queue_entries, 16);
        assert_eq!(c.frontend_pipeline_depth, 7);
        assert_eq!((c.int_units, c.mem_units, c.fp_units), (4, 4, 4));
    }

    #[test]
    fn zero_parameters_rejected() {
        let mut c = DetailedCoreConfig::hpca2010_baseline();
        c.rob_entries = 0;
        assert!(c.validate().is_err());
        let mut c = DetailedCoreConfig::hpca2010_baseline();
        c.issue_width = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn issue_queue_larger_than_rob_rejected() {
        let mut c = DetailedCoreConfig::hpca2010_baseline();
        c.issue_queue_entries = 512;
        assert!(c.validate().is_err());
    }
}
