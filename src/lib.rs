//! # interval-sim — interval simulation for multi-core processors
//!
//! A from-scratch Rust reproduction of *"Interval Simulation: Raising the
//! Level of Abstraction in Architectural Simulation"* (Genbrugge, Eyerman and
//! Eeckhout, HPCA 2010). Interval simulation replaces the cycle-accurate core
//! model of a multi-core simulator by a mechanistic analytical model:
//! execution is split into intervals separated by miss events (branch
//! mispredictions, I-cache/TLB misses, long-latency loads, serializing
//! instructions); the branch predictors and the memory hierarchy — including
//! MOESI coherence and off-chip bandwidth — are simulated in detail to find
//! the miss events, and the analytical model computes the timing of each
//! interval.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`trace`] — instruction model and synthetic SPEC CPU2000 / PARSEC-like
//!   workload generation (the functional front-end substrate),
//! * [`branch`] — branch predictor simulators,
//! * [`mem`] — caches, TLBs, MOESI coherence, interconnect, DRAM,
//! * [`interval`] — the interval simulation core model (the paper's
//!   contribution),
//! * [`detailed`] — the cycle-accurate out-of-order baseline and the one-IPC
//!   model,
//! * [`sim`] — system configuration, workloads, metrics (STP, ANTT) and the
//!   experiment drivers for every figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use interval_sim::sim::config::SystemConfig;
//! use interval_sim::sim::runner::{run, CoreModel};
//! use interval_sim::sim::workload::WorkloadSpec;
//!
//! // Table 1 baseline, one core, one SPEC-like benchmark.
//! let config = SystemConfig::hpca2010_baseline(1);
//! let workload = WorkloadSpec::single("mcf", 10_000);
//! let result = run(CoreModel::Interval, &config, &workload, 42);
//! println!("mcf IPC (interval model): {:.3}", result.core_ipc(0));
//! assert!(result.core_ipc(0) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use iss_branch as branch;
pub use iss_detailed as detailed;
pub use iss_interval as interval;
pub use iss_mem as mem;
pub use iss_sim as sim;
pub use iss_trace as trace;
