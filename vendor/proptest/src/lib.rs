//! Offline stand-in for the `proptest` crate.
//!
//! The container has no network access, so this crate implements the subset
//! of proptest's API the workspace's property tests use: the `proptest!`
//! macro (including `#![proptest_config(..)]`), `Strategy` over integer
//! ranges / `Just` / tuples / `prop_oneof!` unions, `collection::vec`,
//! `option::of`, `sample::subsequence`, `any::<T>()` and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted for a stub:
//! inputs are drawn from a fixed-seed deterministic generator (no
//! persistence files), and failures panic immediately without shrinking —
//! the panic message includes the failing case's index so a run is
//! reproducible by construction.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator used to drive strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty draw bound");
        self.next_u64() % bound
    }
}

/// A recipe for producing values of one type. Stand-in for
/// `proptest::strategy::Strategy` (generation only, no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy that always yields a clone of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Types with a canonical default strategy (`proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Uniform choice between boxed strategies — what [`prop_oneof!`] builds.
pub struct Union<T: Debug> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    /// An empty union; [`prop_oneof!`] populates it via [`Union::or`].
    pub fn empty() -> Self {
        Union {
            options: Vec::new(),
        }
    }

    /// Adds one alternative.
    pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Self {
        self.options.push(Box::new(s));
        self
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: a vector of values from `element`, with
    /// a length drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy yielding `None` or `Some` of the inner strategy's value.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of`: `Some` roughly three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy yielding order-preserving subsequences of a fixed length.
    #[derive(Debug, Clone)]
    pub struct Subsequence<T> {
        values: Vec<T>,
        len: usize,
    }

    /// `proptest::sample::subsequence`: picks `len` elements of `values`,
    /// preserving their relative order.
    pub fn subsequence<T: Clone + Debug>(values: Vec<T>, len: usize) -> Subsequence<T> {
        assert!(len <= values.len(), "subsequence longer than source");
        Subsequence { values, len }
    }

    impl<T: Clone + Debug> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            // Reservoir-style draw of `len` indices, then emit in order.
            let n = self.values.len();
            let mut picked = vec![false; n];
            let mut chosen = 0;
            while chosen < self.len {
                let i = rng.below(n as u64) as usize;
                if !picked[i] {
                    picked[i] = true;
                    chosen += 1;
                }
            }
            self.values
                .iter()
                .zip(&picked)
                .filter(|(_, &p)| p)
                .map(|(v, _)| v.clone())
                .collect()
        }
    }
}

/// Runner configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the tier-1 loop fast
        // while still exercising a meaningful spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Stable per-test seed so failures reproduce across runs.
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Builds a [`Union`] strategy choosing uniformly among the given arms.
/// Weighted arms (`N => strat`) are not supported by this stub.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let u = $crate::Union::empty();
        $(let u = u.or($strat);)+
        u
    }};
}

/// Asserts a condition inside a property, reporting the generated inputs on
/// failure. This stub panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body against `cases` generated inputs.
/// The per-test RNG seed is derived from the test name, so runs are
/// deterministic; the failing case index appears in the panic message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(
                    $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)))
                        ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                let inputs = format!(
                    concat!("case ", "{}", $(" ", stringify!($arg), "={:?}",)* " (seedless deterministic rerun: same binary, same test)"),
                    case $(, $arg)*
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(e) = result {
                    eprintln!("proptest case failed: {inputs}");
                    ::std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}
