//! Offline stand-in for the `serde` crate.
//!
//! Provides the `Serialize` / `Deserialize` trait names and the derive
//! macros of the same names, which is the entire surface this workspace
//! uses (types are annotated for future serialization, but no serializer
//! backend is linked). Replace the `path` dependency in the workspace root
//! with the real crates.io `serde` once network access is available — no
//! source change is required in the workspace crates.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

// The derive macros live in the macro namespace, so re-exporting them under
// the same names as the traits mirrors real serde's `derive` feature.
pub use serde_derive::{Deserialize, Serialize};
