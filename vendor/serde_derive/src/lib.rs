//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The container building this workspace has no network access, so the real
//! crates.io `serde_derive` cannot be fetched. This workspace only ever
//! *derives* `Serialize`/`Deserialize` (no serializer backend such as
//! `serde_json` is linked), so the derives can safely expand to nothing:
//! types stay annotated with the standard attribute syntax and switching to
//! the real serde is a one-line change in the workspace manifest.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
