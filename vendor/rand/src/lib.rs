//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! Implements exactly the surface this workspace uses: `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen::<bool>()`,
//! `gen::<f64>()` and `gen_range` over integer `Range`/`RangeInclusive`
//! bounds. The generator is splitmix64 followed by an xorshift* scramble —
//! statistically decent and, critically, fully deterministic for a given
//! seed, which is what the simulator's reproducibility contract needs. The
//! exact stream differs from crates.io `rand`; all workspace tests assert
//! structural properties (determinism, bounds, learned behaviour), never
//! specific draw values, so they are insensitive to the stream choice.

/// Types constructible from a seed. Mirrors `rand::SeedableRng` for the
/// `seed_from_u64` entry point only.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling surface. Mirrors the subset of `rand::Rng` this workspace uses.
pub trait Rng {
    /// Produces the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a type with a canonical "standard" distribution
    /// (`bool`: fair coin; floats: uniform in `[0, 1)`; ints: uniform).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from an integer range. Panics on an empty range,
    /// matching real `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Distribution hook behind [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the standard distribution for `Self`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Small, fast, deterministic generator (splitmix64 state advance with
    /// an xorshift* output scramble). API-compatible stand-in for
    /// `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // u64 of state, never yields a fixed point at state 0.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-8i64..=8);
            assert!((-8..=8).contains(&y));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
