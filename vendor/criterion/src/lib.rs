//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of Criterion's API the fig* benches use
//! (`benchmark_group`, `sample_size`, `throughput`, `bench_with_input`,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`) with plain
//! wall-clock timing and a text report: median of `sample_size` samples,
//! plus elements/second when a [`Throughput`] was declared. No statistics
//! beyond that — the point is that `cargo bench` produces comparable
//! numbers offline, and swapping in real Criterion is a manifest-only
//! change.

use std::time::Instant;

/// Top-level benchmark driver, passed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Unit used to report a rate alongside raw time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements (here: simulated instructions) per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing a name and measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed_ns: 0 };
            f(&mut b, input);
            samples.push(b.elapsed_ns);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let mut line = format!(
            "{}/{}: median {:.3} ms over {} samples",
            self.name,
            id.id,
            median as f64 / 1e6,
            samples.len()
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if median > 0 {
                let rate = count as f64 / (median as f64 / 1e9);
                line.push_str(&format!(" ({rate:.0} {unit}/s)"));
            }
        }
        eprintln!("{line}");
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Ends the group (report lines are emitted eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Timing handle given to each benchmark closure.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Times the closure. One call per sample (real Criterion batches; a
    /// single call keeps `cargo bench` cheap for simulator-sized payloads).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed_ns = start.elapsed().as_nanos();
        std::mem::drop(out);
    }
}

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a stub has
            // no filtering, so arguments are accepted and ignored.
            $($group();)+
        }
    };
}
